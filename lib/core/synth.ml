module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver
module Builder = Mm_cnf.Builder

type verdict = Sat of Circuit.t | Unsat | Timeout

type attempt = {
  n_legs : int;
  steps_per_leg : int;
  n_rops : int;
  verdict : verdict;
  vars : int;
  clauses : int;
  time_s : float;
  solver_stats : Solver.stats;
}

let default_legs ?(adder = false) spec ~n_rops =
  let base = n_rops + Spec.output_count spec in
  max 1 (if adder then base - 1 else base)

let solve_instance ?timeout (cfg : Encode.config) spec =
  let solver = Solver.create () in
  let builder = Builder.create ~solver () in
  let t0 = Unix.gettimeofday () in
  let layout = Encode.build builder cfg spec in
  let result = Solver.solve ?timeout solver in
  let time_s = Unix.gettimeofday () -. t0 in
  let verdict =
    match result with
    | Solver.Sat ->
      let circuit = Encode.decode layout ~value:(Solver.value_var solver) in
      (match Circuit.realizes circuit spec with
       | Ok () -> Sat circuit
       | Error row ->
         failwith
           (Printf.sprintf
              "Synth.solve_instance: decoded circuit wrong on row %d (encoder bug)"
              row))
    | Solver.Unsat -> Unsat
    | Solver.Unknown -> Timeout
  in
  {
    n_legs = cfg.Encode.n_legs;
    steps_per_leg = cfg.Encode.steps_per_leg;
    n_rops = cfg.Encode.n_rops;
    verdict;
    vars = Builder.num_vars builder;
    clauses = Builder.num_clauses builder;
    time_s;
    solver_stats = Solver.stats solver;
  }

type report = {
  best : (Circuit.t * attempt) option;
  attempts : attempt list;
  rops_proven_minimal : bool;
  steps_proven_minimal : bool;
}

let pp_attempt ppf a =
  let verdict =
    match a.verdict with
    | Sat _ -> "SAT"
    | Unsat -> "UNSAT"
    | Timeout -> "timeout"
  in
  Format.fprintf ppf "N_R=%d N_L=%d N_VS=%d -> %-7s (%d vars, %d clauses, %.2fs)"
    a.n_rops a.n_legs a.steps_per_leg verdict a.vars a.clauses a.time_s

(* The paper's outer loop. Phase 1 fixes N_VS = max_steps and grows N_R from
   0 until SAT; every UNSAT on the way is an optimality certificate for that
   N_R. Phase 2 keeps the minimal N_R and grows N_VS from 1 until SAT. *)
let minimize ?(timeout_per_call = 60.) ?max_rops ?(max_steps = 0) ?legs_of
    ?(rop_kind = Rop.Nor) ?(taps = Encode.Any_vop) ?lookup ?store spec =
  let max_steps =
    if max_steps > 0 then max_steps else Spec.arity spec + 2
  in
  let max_rops =
    match max_rops with Some m -> m | None -> Baseline.nor_count spec
  in
  let legs_of =
    match legs_of with
    | Some f -> f
    | None -> fun n_rops -> default_legs spec ~n_rops
  in
  let attempts = ref [] in
  (* Dimensions answered once in this call are never re-solved: a custom
     [legs_of] can map different N_R to the same (N_L, N_VS, N_R) request,
     and an UNSAT certificate for those dimensions stays valid. *)
  let memo : (int * int * int, attempt) Hashtbl.t = Hashtbl.create 8 in
  let run ~n_rops ~steps =
    let n_legs = legs_of n_rops in
    match Hashtbl.find_opt memo (n_legs, steps, n_rops) with
    | Some a -> a
    | None ->
      let cfg =
        Encode.config ~rop_kind ~taps ~n_legs ~steps_per_leg:steps ~n_rops ()
      in
      let cached = match lookup with Some f -> f cfg | None -> None in
      let a =
        match cached with
        | Some a -> a
        | None ->
          let a = solve_instance ~timeout:timeout_per_call cfg spec in
          (match store with Some g -> g cfg a | None -> ());
          a
      in
      Hashtbl.replace memo (n_legs, steps, n_rops) a;
      attempts := a :: !attempts;
      a
  in
  (* Phase 1: minimal N_R at generous N_VS *)
  let rec find_rops n_rops all_proven =
    if n_rops > max_rops then (None, all_proven)
    else
      let a = run ~n_rops ~steps:max_steps in
      match a.verdict with
      | Sat c -> (Some (n_rops, c, a), all_proven)
      | Unsat -> find_rops (n_rops + 1) all_proven
      | Timeout -> find_rops (n_rops + 1) false
  in
  match find_rops 0 true with
  | None, proven ->
    { best = None; attempts = List.rev !attempts; rops_proven_minimal = proven;
      steps_proven_minimal = false }
  | Some (n_rops, circuit0, attempt0), rops_proven ->
    (* Phase 2: minimal N_VS for this N_R *)
    let rec find_steps steps all_proven =
      if steps >= max_steps then (None, all_proven)
      else
        let a = run ~n_rops ~steps in
        match a.verdict with
        | Sat c -> (Some (c, a), all_proven)
        | Unsat -> find_steps (steps + 1) all_proven
        | Timeout -> find_steps (steps + 1) false
    in
    let best, steps_proven =
      match find_steps 1 true with
      | Some (c, a), proven -> (Some (c, a), proven)
      | None, proven -> (Some (circuit0, attempt0), proven)
    in
    {
      best;
      attempts = List.rev !attempts;
      rops_proven_minimal = rops_proven;
      steps_proven_minimal = steps_proven;
    }

let minimize_r_only ?(timeout_per_call = 60.) ?max_rops ?(rop_kind = Rop.Nor)
    spec =
  let baseline = Baseline.nor_network spec in
  let max_rops =
    match max_rops with Some m -> m | None -> Circuit.n_rops baseline
  in
  let attempts = ref [] in
  let run n_rops =
    let cfg =
      Encode.config ~rop_kind ~n_legs:0 ~steps_per_leg:0 ~n_rops ()
    in
    let a = solve_instance ~timeout:timeout_per_call cfg spec in
    attempts := a :: !attempts;
    a
  in
  let rec find n_rops all_proven =
    if n_rops > max_rops then (None, all_proven)
    else
      let a = run n_rops in
      match a.verdict with
      | Sat c -> (Some (c, a), all_proven)
      | Unsat -> find (n_rops + 1) all_proven
      | Timeout -> find (n_rops + 1) false
  in
  (* N_R = 0 is legitimate: an output may be a plain literal *)
  let best, proven = find 0 true in
  {
    best;
    attempts = List.rev !attempts;
    rops_proven_minimal = proven;
    steps_proven_minimal = true;
  }
