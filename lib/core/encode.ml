module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal
module Tt = Mm_boolfun.Truth_table
module Builder = Mm_cnf.Builder
module Cardinality = Mm_cnf.Cardinality
module Lit = Mm_sat.Lit

type style = Direct | Compact
type taps = Final_only | Any_vop

type config = {
  n_legs : int;
  steps_per_leg : int;
  n_rops : int;
  rop_kind : Rop.kind;
  shared_be : bool;
  style : style;
  taps : taps;
  symmetry_breaking : bool;
  allow_literal_rop_inputs : bool;
  forced_te : (int * int * Literal.t) list;
  forced_be : (int * Literal.t) list;
}

let config ?(rop_kind = Rop.Nor) ?(shared_be = true) ?(style = Compact)
    ?(taps = Final_only) ?(symmetry_breaking = false)
    ?(allow_literal_rop_inputs = true) ?(forced_te = []) ?(forced_be = [])
    ~n_legs ~steps_per_leg ~n_rops () =
  if n_legs < 0 || steps_per_leg < 0 || n_rops < 0 then
    invalid_arg "Encode.config: negative dimension";
  let n_legs, steps_per_leg =
    if n_legs = 0 || steps_per_leg = 0 then (0, 0) else (n_legs, steps_per_leg)
  in
  {
    n_legs;
    steps_per_leg;
    n_rops;
    rop_kind;
    shared_be;
    style;
    taps;
    symmetry_breaking;
    allow_literal_rop_inputs;
    forced_te;
    forced_be;
  }

(* A tap candidate, as both a decode-time source and an encode-time value. *)
type value = Const of bool | Var of int

type t = {
  cfg : config;
  n : int;
  te_sel : int array array array; (* leg, step, literal -> selector var *)
  be_sel : int array array array; (* leg, step, literal (leg 0 only if shared) *)
  gin1 : int array array; (* rop -> candidate -> selector var *)
  gin2 : int array array;
  gout : int array array; (* output -> candidate -> selector var *)
  rop_sources : Circuit.source array array;
  out_sources : Circuit.source array;
}

let pos = Lit.pos
let neg v = Lit.negate (Lit.pos v)

(* v' <-> Vop(prev, te, be) where each operand is a value (constant or
   variable). Emitting through [clause] lets Direct mode prepend selector
   guards. The implicant form is
   v' = (te ∧ ¬be) ∨ (prev ∧ te) ∨ (prev ∧ ¬be). *)
let vop_semantics ~clause ~v' ~prev ~te ~be =
  (* translate a value into Some lit (constant -> None + bool) *)
  let lit_of = function Var x -> `L (pos x) | Const b -> `C b in
  let emit lits =
    (* a clause over (polarity, operand) pairs; constants simplify *)
    let rec go acc = function
      | [] -> clause (List.rev acc)
      | (want_true, operand) :: rest -> (
        match lit_of operand with
        | `C b -> if b = want_true then () (* satisfied *) else go acc rest
        | `L l -> go ((if want_true then l else Lit.negate l) :: acc) rest)
    in
    go [] lits
  in
  let vv = Var v' in
  (* ¬v' ∨ ¬[implicant of F̄]  /  v' ∨ ¬[implicant of F] *)
  emit [ (false, vv); (true, te); (false, be) ];
  emit [ (false, vv); (true, prev); (true, te) ];
  emit [ (false, vv); (true, prev); (false, be) ];
  emit [ (true, vv); (false, te); (true, be) ];
  emit [ (true, vv); (false, prev); (false, te) ];
  emit [ (true, vv); (false, prev); (true, be) ]

(* r <-> R(a, b) for the chosen R-op kind, same conventions. *)
let rop_semantics kind ~clause ~r ~a ~b =
  let lit_of = function Var x -> `L (pos x) | Const c -> `C c in
  let emit lits =
    let rec go acc = function
      | [] -> clause (List.rev acc)
      | (want_true, operand) :: rest -> (
        match lit_of operand with
        | `C c -> if c = want_true then () else go acc rest
        | `L l -> go ((if want_true then l else Lit.negate l) :: acc) rest)
    in
    go [] lits
  in
  let rv = Var r in
  match kind with
  | Rop.Nor ->
    emit [ (false, rv); (false, a) ];
    emit [ (false, rv); (false, b) ];
    emit [ (true, rv); (true, a); (true, b) ]
  | Rop.Nimp ->
    emit [ (false, rv); (true, a) ];
    emit [ (false, rv); (false, b) ];
    emit [ (true, rv); (false, a); (true, b) ]

let exactly_one b ~style lits =
  let encoding =
    match style with
    | Direct -> Cardinality.Pairwise
    | Compact -> Cardinality.Sequential
  in
  Cardinality.exactly_one ~encoding b (Array.to_list (Array.map pos lits))

(* ---------------------------------------------------------------------- *)

(* Activation selectors for the incremental budget ladder: one variable per
   leg, per V-step (shared across legs) and per R-op. The formula is built
   once at the maximum dimensions; assuming a prefix of each vector true and
   the rest false restricts it to exactly the sub-budget instance:

   - the V-op semantics of (leg, step) only apply while both are active;
   - a deactivated step on an active leg is FORCED to hold the previous
     state (not merely released): leg-final taps read the last row, so a
     floating suffix step could invent a value the active prefix cannot
     produce, making a SAT answer under assumptions decode to a circuit
     that does not realize f at the truncated dimensions;
   - R-op semantics only apply to active R-ops, and an active R-op (or an
     output, which is always active) may only select active sources. The
     exclusion is released for inactive R-ops so their exactly-one input
     selectors stay trivially satisfiable. *)
type activation = {
  leg_act : int array;
  step_act : int array;
  rop_act : int array;
  live : int array array;
  susp : int array array;
}

let build_gen act b cfg spec =
  let n = Spec.arity spec in
  let nt = 1 lsl n in
  let nlits = Literal.count n in
  let n_out = Spec.output_count spec in
  let lit_val j q = Literal.eval n (Literal.of_index n j) q in
  let fresh_grid rows cols = Array.init rows (fun _ -> Array.init cols (fun _ -> Builder.fresh_var b)) in
  let fresh_cube a bb c =
    Array.init a (fun _ -> fresh_grid bb c)
  in

  (* --- literal truth-table variables (Direct only, Eq. 4) --- *)
  let l_var =
    match cfg.style with
    | Compact -> [||]
    | Direct ->
      let l = fresh_grid nlits nt in
      Array.iteri
        (fun j row ->
          Array.iteri
            (fun q v -> Builder.fix b (pos v) (lit_val j q))
            row)
        l;
      l
  in

  (* --- electrode selectors --- *)
  let te_sel = fresh_cube cfg.n_legs cfg.steps_per_leg nlits in
  let be_sel =
    match cfg.style, cfg.shared_be with
    | Compact, true ->
      (* one shared selector bank per step, stored under leg 0 *)
      if cfg.n_legs = 0 then [||] else [| fresh_grid cfg.steps_per_leg nlits |]
    | Compact, false | Direct, _ -> fresh_cube cfg.n_legs cfg.steps_per_leg nlits
  in
  let be_sel_of leg step =
    match cfg.style, cfg.shared_be with
    | Compact, true -> be_sel.(0).(step)
    | Compact, false | Direct, _ -> be_sel.(leg).(step)
  in

  (* Eq. 6 (and its BE twin) *)
  Array.iter (Array.iter (fun sel -> exactly_one b ~style:cfg.style sel)) te_sel;
  Array.iter (Array.iter (fun sel -> exactly_one b ~style:cfg.style sel)) be_sel;

  (* Direct + shared BE: pairwise equivalence clauses as in the paper *)
  (match cfg.style, cfg.shared_be with
   | Direct, true ->
     for step = 0 to cfg.steps_per_leg - 1 do
       for leg = 1 to cfg.n_legs - 1 do
         for k = 0 to nlits - 1 do
           Builder.add b [ neg be_sel.(leg).(step).(k); pos be_sel.(0).(step).(k) ];
           Builder.add b [ pos be_sel.(leg).(step).(k); neg be_sel.(0).(step).(k) ]
         done
       done
     done
   | Direct, false | Compact, _ -> ());

  (* --- V-op value variables and semantics (Eq. 5) --- *)
  let v_var = fresh_cube cfg.n_legs cfg.steps_per_leg nt in
  (match cfg.style with
   | Compact ->
     (* per-row electrode signals *)
     let te_sig = fresh_cube cfg.n_legs cfg.steps_per_leg nt in
     let be_sig =
       if cfg.shared_be then
         if cfg.n_legs = 0 then [||] else [| fresh_grid cfg.steps_per_leg nt |]
       else fresh_cube cfg.n_legs cfg.steps_per_leg nt
     in
     let be_sig_of leg step = if cfg.shared_be then be_sig.(0).(step) else be_sig.(leg).(step) in
     (* signal <- selected literal's row value *)
     let bind_signal sel sig_row =
       for q = 0 to nt - 1 do
         for j = 0 to nlits - 1 do
           if lit_val j q then Builder.add b [ neg sel.(j); pos sig_row.(q) ]
           else Builder.add b [ neg sel.(j); neg sig_row.(q) ]
         done
       done
     in
     for leg = 0 to cfg.n_legs - 1 do
       for step = 0 to cfg.steps_per_leg - 1 do
         bind_signal te_sel.(leg).(step) te_sig.(leg).(step)
       done
     done;
     if cfg.shared_be then begin
       if cfg.n_legs > 0 then
         for step = 0 to cfg.steps_per_leg - 1 do
           bind_signal be_sel.(0).(step) be_sig.(0).(step)
         done
     end
     else
       for leg = 0 to cfg.n_legs - 1 do
         for step = 0 to cfg.steps_per_leg - 1 do
           bind_signal be_sel.(leg).(step) be_sig.(leg).(step)
         done
       done;
     (* state evolution *)
     for leg = 0 to cfg.n_legs - 1 do
       for step = 0 to cfg.steps_per_leg - 1 do
         (* activation: semantics only bind while leg and step are active.
            [live] is the defined product leg_act ∧ step_act, so the guard
            costs one literal per clause instead of two. *)
         let guard =
           match act with
           | None -> []
           | Some a -> [ neg a.live.(leg).(step) ]
         in
         for q = 0 to nt - 1 do
           let prev =
             if step = 0 then Const false else Var v_var.(leg).(step - 1).(q)
           in
           vop_semantics
             ~clause:(fun c -> Builder.add b (guard @ c))
             ~v':v_var.(leg).(step).(q) ~prev
             ~te:(Var te_sig.(leg).(step).(q))
             ~be:(Var (be_sig_of leg step).(q))
         done;
         (* active leg + deactivated step: forced no-op (hold) so leg-final
            taps read through the deactivated suffix *)
         (match act with
          | None -> ()
          | Some a ->
            let hold = [ neg a.susp.(leg).(step) ] in
            for q = 0 to nt - 1 do
              let v' = v_var.(leg).(step).(q) in
              if step = 0 then Builder.add b (hold @ [ neg v' ])
              else begin
                let prev = v_var.(leg).(step - 1).(q) in
                Builder.add b (hold @ [ neg v'; pos prev ]);
                Builder.add b (hold @ [ pos v'; neg prev ])
              end
            done)
       done
     done
   | Direct ->
     (* guarded by the selector pair, per Eq. 5 *)
     for leg = 0 to cfg.n_legs - 1 do
       for step = 0 to cfg.steps_per_leg - 1 do
         for j = 0 to nlits - 1 do
           for k = 0 to nlits - 1 do
             let guard =
               [ neg te_sel.(leg).(step).(j); neg be_sel.(leg).(step).(k) ]
             in
             for q = 0 to nt - 1 do
               let prev =
                 if step = 0 then Var l_var.(0).(q)
                 else Var v_var.(leg).(step - 1).(q)
               in
               vop_semantics
                 ~clause:(fun c -> Builder.add b (guard @ c))
                 ~v':v_var.(leg).(step).(q) ~prev
                 ~te:(Var l_var.(j).(q)) ~be:(Var l_var.(k).(q))
             done
           done
         done
       done
     done);

  (* --- tap candidates --- *)
  let leg_final leg = v_var.(leg).(cfg.steps_per_leg - 1) in
  let r_var = fresh_grid cfg.n_rops nt in
  (* base candidates shared by R-ops and outputs: literals then legs/v-ops *)
  let base_candidates =
    let lits =
      List.init nlits (fun j ->
          let src = Circuit.From_literal (Literal.of_index n j) in
          let value q =
            match cfg.style with
            | Compact -> Const (lit_val j q)
            | Direct -> Var l_var.(j).(q)
          in
          (src, value))
    in
    let vops =
      match cfg.taps with
      | Final_only ->
        List.init cfg.n_legs (fun leg ->
            (Circuit.From_leg leg, fun q -> Var (leg_final leg).(q)))
      | Any_vop ->
        List.concat
          (List.init cfg.n_legs (fun leg ->
               List.init cfg.steps_per_leg (fun step ->
                   ( Circuit.From_vop (leg, step),
                     fun q -> Var v_var.(leg).(step).(q) ))))
    in
    lits @ vops
  in
  let rop_candidates i =
    base_candidates
    @ List.init i (fun r -> (Circuit.From_rop r, fun q -> Var r_var.(r).(q)))
  in
  let out_candidates = rop_candidates cfg.n_rops in

  (* filter literal inputs to R-ops when disallowed *)
  let filter_lits cands =
    if cfg.allow_literal_rop_inputs then cands
    else
      List.filter
        (fun (src, _) ->
          match src with Circuit.From_literal _ -> false | _ -> true)
        cands
  in

  (* --- R-ops (Eqs. 7, 8) --- *)
  let rop_cand_arrays =
    Array.init cfg.n_rops (fun i -> Array.of_list (filter_lits (rop_candidates i)))
  in
  let gin1 =
    Array.init cfg.n_rops (fun i ->
        Array.init (Array.length rop_cand_arrays.(i)) (fun _ -> Builder.fresh_var b))
  in
  let gin2 =
    Array.init cfg.n_rops (fun i ->
        Array.init (Array.length rop_cand_arrays.(i)) (fun _ -> Builder.fresh_var b))
  in
  Array.iteri
    (fun i sel ->
      if Array.length sel = 0 then invalid_arg "Encode.build: R-op has no candidates";
      exactly_one b ~style:cfg.style sel;
      exactly_one b ~style:cfg.style gin2.(i))
    gin1;
  (match cfg.style with
   | Compact ->
     (* per-row input signals, linear in the candidate count *)
     let in1_sig = fresh_grid cfg.n_rops nt in
     let in2_sig = fresh_grid cfg.n_rops nt in
     let bind gsel sig_row cands =
       Array.iteri
         (fun jc (_, value) ->
           for q = 0 to nt - 1 do
             match value q with
             | Const true -> Builder.add b [ neg gsel.(jc); pos sig_row.(q) ]
             | Const false -> Builder.add b [ neg gsel.(jc); neg sig_row.(q) ]
             | Var x ->
               Builder.add b [ neg gsel.(jc); neg sig_row.(q); pos x ];
               Builder.add b [ neg gsel.(jc); pos sig_row.(q); neg x ]
           done)
         cands
     in
     for i = 0 to cfg.n_rops - 1 do
       bind gin1.(i) in1_sig.(i) rop_cand_arrays.(i);
       bind gin2.(i) in2_sig.(i) rop_cand_arrays.(i);
       (* activation: an inactive R-op's semantics are released entirely *)
       let guard =
         match act with None -> [] | Some a -> [ neg a.rop_act.(i) ]
       in
       for q = 0 to nt - 1 do
         rop_semantics cfg.rop_kind
           ~clause:(fun c -> Builder.add b (guard @ c))
           ~r:r_var.(i).(q)
           ~a:(Var in1_sig.(i).(q)) ~b:(Var in2_sig.(i).(q))
       done
     done
   | Direct ->
     for i = 0 to cfg.n_rops - 1 do
       let cands = rop_cand_arrays.(i) in
       Array.iteri
         (fun jc (_, value1) ->
           Array.iteri
             (fun kc (_, value2) ->
               let guard = [ neg gin1.(i).(jc); neg gin2.(i).(kc) ] in
               for q = 0 to nt - 1 do
                 rop_semantics cfg.rop_kind
                   ~clause:(fun c -> Builder.add b (guard @ c))
                   ~r:r_var.(i).(q) ~a:(value1 q) ~b:(value2 q)
               done)
             cands)
         cands
     done);

  (* --- outputs (Eqs. 9, 10) --- *)
  let out_cand_array = Array.of_list out_candidates in
  if Array.length out_cand_array = 0 then
    invalid_arg "Encode.build: no sources for outputs";
  let gout = fresh_grid n_out (Array.length out_cand_array) in
  Array.iter (fun sel -> exactly_one b ~style:cfg.style sel) gout;
  (match cfg.style with
   | Compact ->
     for o = 0 to n_out - 1 do
       let expected q = Tt.eval (Spec.output spec o) q in
       Array.iteri
         (fun jc (_, value) ->
           (* constants: forbid the selector outright on any mismatch *)
           let mismatch = ref false in
           for q = 0 to nt - 1 do
             match value q with
             | Const c -> if c <> expected q then mismatch := true
             | Var x ->
               if expected q then Builder.add b [ neg gout.(o).(jc); pos x ]
               else Builder.add b [ neg gout.(o).(jc); neg x ]
           done;
           if !mismatch then Builder.add b [ neg gout.(o).(jc) ])
         out_cand_array
     done
   | Direct ->
     (* o variables pinned by unit clauses, then selector-guarded equality *)
     let o_var = fresh_grid n_out nt in
     for o = 0 to n_out - 1 do
       for q = 0 to nt - 1 do
         Builder.fix b (pos o_var.(o).(q)) (Tt.eval (Spec.output spec o) q)
       done;
       Array.iteri
         (fun jc (_, value) ->
           for q = 0 to nt - 1 do
             match value q with
             | Const _ -> assert false (* Direct mode has no constants *)
             | Var x ->
               Builder.add b [ neg gout.(o).(jc); neg o_var.(o).(q); pos x ];
               Builder.add b [ neg gout.(o).(jc); pos o_var.(o).(q); neg x ]
           done)
         out_cand_array
     done);

  (* --- activation: selecting a source requires that source be active --- *)
  (match act with
   | None -> ()
   | Some a ->
     let src_requires = function
       | Circuit.From_literal _ -> []
       | Circuit.From_leg l -> [ pos a.leg_act.(l) ]
       | Circuit.From_vop (l, s) -> [ pos a.live.(l).(s) ]
       | Circuit.From_rop r -> [ pos a.rop_act.(r) ]
     in
     let exclude release gsel cands =
       Array.iteri
         (fun jc (src, _) ->
           List.iter
             (fun need -> Builder.add b (release @ [ neg gsel.(jc); need ]))
             (src_requires src))
         cands
     in
     for i = 0 to cfg.n_rops - 1 do
       (* released when the selecting R-op is itself inactive, so its
          exactly-one input groups stay satisfiable at every budget point *)
       let release = [ neg a.rop_act.(i) ] in
       exclude release gin1.(i) rop_cand_arrays.(i);
       exclude release gin2.(i) rop_cand_arrays.(i)
     done;
     for o = 0 to n_out - 1 do
       exclude [] gout.(o) out_cand_array
     done);

  (* --- designer constraints --- *)
  List.iter
    (fun (leg, step, l) ->
      if leg < 0 || leg >= cfg.n_legs || step < 0 || step >= cfg.steps_per_leg
      then invalid_arg "Encode.build: forced_te out of range";
      Builder.fix b (pos te_sel.(leg).(step).(Literal.to_index n l)) true)
    cfg.forced_te;
  List.iter
    (fun (step, l) ->
      if step < 0 || step >= cfg.steps_per_leg then
        invalid_arg "Encode.build: forced_be out of range";
      Builder.fix b (pos (be_sel_of 0 step).(Literal.to_index n l)) true)
    cfg.forced_be;

  (* --- symmetry breaking --- *)
  if cfg.symmetry_breaking then begin
    (* commutative R-ops: w.l.o.g. candidate index of in1 >= that of in2 *)
    if Rop.commutative cfg.rop_kind then
      for i = 0 to cfg.n_rops - 1 do
        let m = Array.length gin1.(i) in
        for j = 0 to m - 1 do
          for k = j + 1 to m - 1 do
            Builder.add b [ neg gin1.(i).(j); neg gin2.(i).(k) ]
          done
        done
      done;
    (* legs are interchangeable units: order them by the TE selector of the
       first step (ties left unbroken, which is still sound). Disabled when
       the designer pinned specific legs. *)
    if cfg.forced_te = [] && cfg.n_legs > 1 && cfg.steps_per_leg > 0 then
      for leg = 0 to cfg.n_legs - 2 do
        for j = 0 to nlits - 1 do
          for k = 0 to j - 1 do
            Builder.add b [ neg te_sel.(leg).(0).(j); neg te_sel.(leg + 1).(0).(k) ]
          done
        done
      done
  end;

  {
    cfg;
    n;
    te_sel;
    be_sel;
    gin1;
    gin2;
    gout;
    rop_sources = Array.map (Array.map fst) rop_cand_arrays;
    out_sources = Array.map fst out_cand_array;
  }

let build b cfg spec = build_gen None b cfg spec

let build_with_activation b cfg spec =
  if cfg.style <> Compact then
    invalid_arg "Encode.build_with_activation: requires Compact style";
  (* activation variables first: chained so a single boundary assumption
     pins the whole vector, and dense so assumption arrays stay small *)
  let fresh k = Array.init k (fun _ -> Builder.fresh_var b) in
  let leg_act = fresh cfg.n_legs in
  let step_act = fresh cfg.steps_per_leg in
  let rop_act = fresh cfg.n_rops in
  let chain v = Builder.chain_implies b (Array.map pos v) in
  chain leg_act;
  chain step_act;
  chain rop_act;
  (* Product literals: every clause of the V-machine is gated by one
     literal instead of two. Both implication directions are required —
     a [live] floating true on a deactivated step would impose V-op
     semantics the hold clauses contradict, and a floating [susp] would
     pin an active step to holding; either is a spurious UNSAT. *)
  let product define =
    Array.init cfg.n_legs (fun l ->
        Array.init cfg.steps_per_leg (fun s ->
            let v = Builder.fresh_var b in
            define v leg_act.(l) step_act.(s);
            v))
  in
  let live =
    (* live(l,s) <-> leg_act(l) /\ step_act(s) *)
    product (fun v la sa ->
        Builder.add b [ neg v; pos la ];
        Builder.add b [ neg v; pos sa ];
        Builder.add b [ pos v; neg la; neg sa ])
  in
  let susp =
    (* susp(l,s) <-> leg_act(l) /\ ~step_act(s) *)
    product (fun v la sa ->
        Builder.add b [ neg v; pos la ];
        Builder.add b [ neg v; neg sa ];
        Builder.add b [ pos v; neg la; pos sa ])
  in
  let a = { leg_act; step_act; rop_act; live; susp } in
  let t = build_gen (Some a) b cfg spec in
  (t, a)

let selected ~value sel what =
  let chosen = ref [] in
  Array.iteri (fun j v -> if value v then chosen := j :: !chosen) sel;
  match !chosen with
  | [ j ] -> j
  | l ->
    failwith
      (Printf.sprintf "Encode.decode: %s selector has %d true entries" what
         (List.length l))

let decode_prefix t ~value ~n_legs ~steps_per_leg ~n_rops =
  let cfg = t.cfg in
  if
    n_legs < 0 || n_legs > cfg.n_legs
    || steps_per_leg < 0
    || steps_per_leg > cfg.steps_per_leg
    || n_rops < 0
    || n_rops > cfg.n_rops
  then invalid_arg "Encode.decode_prefix: dimensions exceed the encoding";
  (* same normalization as [config]: no legs and no steps go together *)
  let n_legs, steps_per_leg =
    if n_legs = 0 || steps_per_leg = 0 then (0, 0) else (n_legs, steps_per_leg)
  in
  let be_sel_of leg step =
    match cfg.style, cfg.shared_be with
    | Compact, true -> t.be_sel.(0).(step)
    | Compact, false | Direct, _ -> t.be_sel.(leg).(step)
  in
  let legs =
    Array.init n_legs (fun leg ->
        Array.init steps_per_leg (fun step ->
            let te_j = selected ~value t.te_sel.(leg).(step) "TE" in
            let be_j = selected ~value (be_sel_of leg step) "BE" in
            {
              Circuit.te = Literal.of_index t.n te_j;
              be = Literal.of_index t.n be_j;
            }))
  in
  let rops =
    Array.init n_rops (fun i ->
        let j1 = selected ~value t.gin1.(i) "In1" in
        let j2 = selected ~value t.gin2.(i) "In2" in
        { Circuit.in1 = t.rop_sources.(i).(j1); in2 = t.rop_sources.(i).(j2) })
  in
  let outputs =
    Array.init
      (Array.length t.gout)
      (fun o ->
        let j = selected ~value t.gout.(o) "output" in
        t.out_sources.(j))
  in
  Circuit.make ~arity:t.n ~rop_kind:cfg.rop_kind ~legs ~rops ~outputs ()

let decode t ~value =
  decode_prefix t ~value ~n_legs:t.cfg.n_legs
    ~steps_per_leg:t.cfg.steps_per_leg ~n_rops:t.cfg.n_rops

let size cfg spec =
  let b = Builder.create () in
  let (_ : t) = build b cfg spec in
  (Builder.num_vars b, Builder.num_clauses b)

(* Selector groups suitable for cube-and-conquer splitting, best first.

   Each returned group is a full exactly-one selector bank: exactly one
   variable in it is true in every model, so asserting each variable in
   turn yields cubes that are exhaustive (the exactly-one constraint
   forbids the all-false case) and mutually exclusive. The first-leg
   first-step TE bank is the preferred split — leg order is
   symmetry-constrained on that very selector, so the cubes inherit the
   symmetry breaking instead of multiplying it away. For R-only instances
   (no legs) the first R-op's input selectors are the only split. *)
let cube_groups t =
  if t.cfg.n_legs > 0 && t.cfg.steps_per_leg > 0 then begin
    let groups = ref [ Array.copy t.te_sel.(0).(0) ] in
    if Array.length t.be_sel > 0 && Array.length t.be_sel.(0) > 0 then
      groups := Array.copy t.be_sel.(0).(0) :: !groups;
    List.rev !groups
  end
  else if Array.length t.gin1 > 0 then
    [ Array.copy t.gin1.(0); Array.copy t.gin2.(0) ]
  else []
