(** Incremental budget-ladder synthesis.

    The paper's outer loop (Table IV) proves optimality by answering
    Φ(f, N_V, N_R) at a ladder of operation budgets. The monolithic driver
    ({!Synth.solve_instance}) builds a fresh solver and fresh CNF per budget
    point, discarding every learned clause between attempts. This module
    instead encodes Φ {e once} at the maximum dimensions with per-leg,
    per-V-step and per-R-op activation selectors ({!Encode.activation}) and
    drives the sweep as [Solver.solve ~assumptions] calls on the {e same}
    solver: learned clauses and VSIDS scores carry across all budget
    points, and an UNSAT under assumptions is still a per-budget
    optimality certificate. Saved phases carry only across a SAT answer
    (a useful warm start); after an UNSAT/timeout they are reset
    ({!Mm_sat.Solver.reset_phases}) because phases saved while refuting
    one budget keep steering the search into the refuted region at the
    next one.

    Failed-assumption sets of UNSAT answers are remembered: a later point
    whose activation assignment satisfies a recorded set is refuted without
    touching the solver (certificate reuse across the two phases).

    A [t] owns a single {!Mm_sat.Solver.t} and is not safe for concurrent
    use; parallel frontier racing ({!Synth.minimize} with [~racing:true])
    runs a second, independent instance on its own domain and cancels the
    loser through the solver's cooperative [stop] hook. *)

module Spec = Mm_boolfun.Spec
module Solver = Mm_sat.Solver

type verdict = Sat of Circuit.t | Unsat | Timeout

(** Same shape as {!Synth.attempt} (which re-exports this type): [vars] and
    [clauses] are those of the shared max-budget encoding, identical for
    every point; [solver_stats] holds per-call deltas for the monotone
    counters (conflicts, decisions, propagations, restarts) and absolute
    values for the DB-size and throughput fields. *)
type attempt = {
  n_legs : int;
  steps_per_leg : int;
  n_rops : int;
  verdict : verdict;
  vars : int;
  clauses : int;
  time_s : float;
  solver_stats : Solver.stats;
}

type t

(** [create ~max_legs ~max_steps ~max_rops spec] encodes Φ at the maximum
    dimensions (compact style) with activation selectors. Defaults mirror
    {!Encode.config}. Raises [Invalid_argument] on negative dimensions. *)
val create :
  ?rop_kind:Rop.kind ->
  ?taps:Encode.taps ->
  ?symmetry_breaking:bool ->
  ?allow_literal_rop_inputs:bool ->
  max_legs:int ->
  max_steps:int ->
  max_rops:int ->
  Spec.t ->
  t

(** Formula size of the shared encoding: (variables, clauses). *)
val size : t -> int * int

(** Cumulative statistics of the underlying solver (not per-point deltas). *)
val cumulative_stats : t -> Solver.stats

(** Number of recorded per-budget UNSAT certificates. *)
val certificates : t -> int

(** [solve_point t ~n_legs ~steps ~n_rops] answers Φ restricted to one
    budget point. SAT models are decoded through {!Encode.decode_prefix}
    and re-verified against the spec on all rows (raising [Failure] on an
    encoder inconsistency). [stop] is the solver's cooperative cancellation
    hook (see {!Mm_sat.Solver.solve}); a cancelled call reports
    {!Timeout}. Dimensions must not exceed the encoded maxima. *)
val solve_point :
  ?timeout:float ->
  ?stop:(unit -> bool) ->
  t ->
  n_legs:int ->
  steps:int ->
  n_rops:int ->
  attempt
