module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal
module Device = Mm_device.Device
module Crossbar = Mm_device.Crossbar
module Rng = Mm_device.Rng

type plan = {
  circuit : Circuit.t;
  shared_be : Literal.t array;
  lit_cols : (Literal.t * int) list; (* row-0 columns holding literals *)
  levels : int array; (* per R-op dependency level, 1-based *)
  depth : int;
  n_rows : int;
  n_cols : int;
}

(* Layout: row 0 hosts the V-legs and literal cells; R-op [i] owns row
   [i + 1] with its operand cells at columns 0/1 and its output at column 2.
   Gates of one dependency level live on distinct rows by construction and
   fire in a single parallel cycle. *)

let levelize = Circuit.rop_levels

let plan c =
  if c.Circuit.rop_kind <> Rop.Nor then
    invalid_arg "Xbar_schedule.plan: only MAGIC NOR circuits are schedulable";
  let c = Circuit.physicalize c in
  let steps = Circuit.steps_per_leg c in
  let shared_be =
    Array.init steps (fun s ->
        let be = c.Circuit.legs.(0).(s).Circuit.be in
        Array.iter
          (fun leg ->
            if not (Literal.equal leg.(s).Circuit.be be) then
              invalid_arg "Xbar_schedule.plan: legs disagree on the shared BE rail")
          c.Circuit.legs;
        be)
  in
  let module LS = Set.Make (struct
    type t = Literal.t

    let compare = Stdlib.compare
  end) in
  let lit_inputs = ref LS.empty in
  Array.iter
    (fun { Circuit.in1; in2 } ->
      List.iter
        (function
          | Circuit.From_literal l -> lit_inputs := LS.add l !lit_inputs
          | Circuit.From_leg _ | Circuit.From_vop _ | Circuit.From_rop _ -> ())
        [ in1; in2 ])
    c.Circuit.rops;
  let lit_cols =
    List.mapi (fun i l -> (l, Circuit.n_legs c + i)) (LS.elements !lit_inputs)
  in
  let levels = levelize c in
  let depth = Array.fold_left max 0 levels in
  let n_rows = Circuit.n_rops c + 1 in
  let n_cols = max 3 (Circuit.n_legs c + List.length lit_cols) in
  { circuit = c; shared_be; lit_cols; levels; depth; n_rows; n_cols }

let circuit t = t.circuit
let depth t = t.depth
let dimensions t = (t.n_rows, t.n_cols)

let cycles t =
  Circuit.steps_per_leg t.circuit + (2 * t.depth) + Circuit.n_outputs t.circuit

type run = { outputs : bool array; cycles : int }

(* junction where a source's value lives once computed *)
let source_junction t = function
  | Circuit.From_leg l -> (0, l)
  | Circuit.From_vop (l, s) ->
    assert (s = Circuit.steps_per_leg t.circuit - 1);
    (0, l)
  | Circuit.From_literal l -> (0, List.assoc l t.lit_cols)
  | Circuit.From_rop r -> (r + 1, 2)

let execute ?(params = Device.default_params) ?rng t ~input () =
  let rng = match rng with Some r -> r | None -> Rng.create 0xcb5eed in
  let c = t.circuit in
  let n = c.Circuit.arity in
  if input < 0 || input >= 1 lsl n then invalid_arg "Xbar_schedule.execute";
  let xb = Crossbar.create ~rng ~rows:t.n_rows ~cols:t.n_cols ~params () in
  (* initialization (excluded from the cycle count, as in the paper):
     legs start at 0 (creation default), literal cells get their value,
     all gate outputs are preset *)
  List.iter
    (fun (l, col) -> Crossbar.set_state xb ~row:0 ~col (Literal.eval n l input))
    t.lit_cols;
  Array.iteri
    (fun i _ ->
      Crossbar.set_state xb ~row:(i + 1) ~col:2 (Rop.output_preset Rop.Nor))
    c.Circuit.rops;
  let cycle_count = ref 0 in
  (* V-phase on row 0, exactly as on the 1D array *)
  for s = 0 to Circuit.steps_per_leg c - 1 do
    let be = Literal.eval n t.shared_be.(s) input in
    let te col =
      if col < Circuit.n_legs c then
        Some (Literal.eval n c.Circuit.legs.(col).(s).Circuit.te input)
      else None
    in
    Crossbar.vop_cycle_row xb ~row:0 ~te ~be;
    incr cycle_count
  done;
  (* R-phase: per level, one transfer cycle then one parallel NOR cycle *)
  for level = 1 to t.depth do
    let gates = ref [] in
    Array.iteri
      (fun i lv ->
        if lv = level then begin
          let { Circuit.in1; in2 } = c.Circuit.rops.(i) in
          let row = i + 1 in
          Crossbar.transfer xb ~src:(source_junction t in1) ~dst:(row, 0);
          Crossbar.transfer xb ~src:(source_junction t in2) ~dst:(row, 1);
          gates := (row, 0, 1, 2) :: !gates
        end)
      t.levels;
    incr cycle_count;
    Crossbar.parallel_magic_nor xb !gates;
    incr cycle_count
  done;
  let outputs =
    Array.map
      (fun src ->
        let row, col = source_junction t src in
        fst (Crossbar.read xb ~row ~col))
      c.Circuit.outputs
  in
  { outputs; cycles = !cycle_count + Array.length outputs }

let verify t spec =
  let n = Spec.arity spec in
  let failures = ref [] in
  for input = (1 lsl n) - 1 downto 0 do
    let r = execute t ~input () in
    let word = ref 0 in
    Array.iteri (fun o b -> if b then word := !word lor (1 lsl o)) r.outputs;
    if !word <> Spec.eval spec input then failures := input :: !failures
  done;
  !failures

let latency_comparison c =
  let line = Circuit.n_steps c + Circuit.n_outputs c in
  let xb = plan c in
  (line, cycles xb)
