(** Mixed-mode circuit intermediate representation.

    A circuit has a V-op part — [N_L] V-legs of [N_VS] V-ops each, executed
    in parallel on one device per leg with a shared bottom electrode — and an
    R-op part of [N_R] stateful gates executed sequentially afterwards
    (Fig. 1 of the paper). R-op inputs and circuit outputs tap leg results,
    earlier R-ops, or plain literals (a literal input costs an extra device
    loaded during initialization). *)

module Literal = Mm_boolfun.Literal
module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec

(** One V-op: the literals driving the electrodes. The device input is the
    previous V-op of the same leg (const-0 state for the first). *)
type vop = { te : Literal.t; be : Literal.t }

(** Where an R-op input or a circuit output comes from.

    [From_vop (l, s)] taps leg [l] after step [s] — the paper's Eq. 7 allows
    any of the [N_V] V-op results as an R-op input. On a physical line array
    a leg's device only exposes its value after the final step, so circuits
    using non-final taps must be passed through {!physicalize} before
    scheduling (one replica device per distinct tap). *)
type source =
  | From_literal of Literal.t
  | From_leg of int  (** final value of leg [i] (0-based) *)
  | From_vop of int * int  (** (leg, step): value of leg [i] after step [s] *)
  | From_rop of int  (** output of an earlier R-op *)

type rop = { in1 : source; in2 : source }

type t = {
  arity : int;
  rop_kind : Rop.kind;
  legs : vop array array;  (** [legs.(l).(s)] = step [s] of leg [l] *)
  rops : rop array;
  outputs : source array;
}

val make :
  arity:int ->
  ?rop_kind:Rop.kind ->
  legs:vop array array ->
  rops:rop array ->
  outputs:source array ->
  unit ->
  t

(** Structural sanity: equal leg lengths, R-ops reference earlier R-ops
    only, sources in range. Raises [Invalid_argument] otherwise
    (performed by {!make}). *)
val validate : t -> unit

(** {2 Evaluation} *)

(** Truth table of a leg after step [s] (0-based); [s = -1] gives the
    initial const-0. *)
val leg_value : t -> leg:int -> step:int -> Tt.t

(** Truth table produced by a source. *)
val source_value : t -> source -> Tt.t

(** Truth table of R-op [i]'s output. *)
val rop_value : t -> int -> Tt.t

(** Truth tables of all outputs. *)
val output_tables : t -> Tt.t array

(** [eval t row] = output word for one input row (bit [o] = output [o]). *)
val eval : t -> int -> int

(** [realizes t spec] checks all [2^n] rows; [Error row] gives the first
    mismatching row. *)
val realizes : t -> Spec.t -> (unit, int) result

(** {2 Metrics — the columns of Table IV} *)

val n_legs : t -> int

(** Steps per leg, N_VS. *)
val steps_per_leg : t -> int

(** Total V-ops, N_V = N_L · N_VS. *)
val n_vops : t -> int

val n_rops : t -> int
val n_outputs : t -> int

(** Total execution steps N_St = N_VS + N_R (V-ops parallel, R-ops
    sequential on a line array). *)
val n_steps : t -> int

(** ASAP dependency level of every R-op (1-based; literal, leg and V-op
    sources count as level 0). R-ops of equal level are mutually
    independent and may fire in the same cycle on a row-parallel target. *)
val rop_levels : t -> int array

(** [max (rop_levels t)] (0 when there are no R-ops) — the R-phase critical
    path, the cycle lower bound a row-parallel scheduler is chasing. *)
val rop_depth : t -> int

(** Devices: one per distinct tap point of each leg (at least one per leg),
    one per R-op output, one per distinct literal fed directly to an R-op
    (loaded at initialization). For final-tap circuits this is
    [n_legs + n_rops + #literal inputs]. *)
val n_devices : t -> int

(** [true] when every [From_vop] tap is at the final step (directly
    schedulable on a line array). *)
val final_taps_only : t -> bool

(** [physicalize t] returns an equivalent circuit whose taps are all
    leg-final: legs tapped at several distinct steps are split into replica
    legs, truncated prefixes are padded with hold steps (TE = BE, matching
    the shared BE of the original schedule) so all legs keep equal length.
    The result satisfies [final_taps_only] and realizes the same function. *)
val physicalize : t -> t

val pp : Format.formatter -> t -> unit
val pp_source : Format.formatter -> source -> unit
