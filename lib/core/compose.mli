(** Structural combinators over mixed-mode circuits.

    These underpin the scalable heuristic flow ({!Heuristic}): independently
    synthesized sub-circuits are merged onto one line array by serializing
    their V-op phases into disjoint step windows (legs outside their window
    hold via TE = BE, which the shared rail always permits — the paper's
    "dummy cycles") and concatenating their R-op sequences. *)

(** Mapping from a sub-circuit's sources into the merged circuit's sources. *)
type remap = Circuit.source -> Circuit.source

(** [merge_parallel circuits] merges circuits of equal arity and R-op kind.
    Returns the merged circuit shell — with the concatenated legs and R-ops
    but {e no outputs} — and one remapping per input circuit. Use the
    remappings to build outputs (or further gates) over the merged space via
    {!with_outputs} / {!with_extra_rops}. *)
val merge_parallel : Circuit.t list -> Circuit.t * remap list

(** [with_outputs shell outputs] finalizes a merged shell. *)
val with_outputs : Circuit.t -> Circuit.source array -> Circuit.t

(** [with_extra_rops shell rops outputs] appends R-ops (whose sources must
    already live in the merged space; [From_rop] indices are relative to the
    appended list via [`New i], existing ones via [`Old src]) and sets the
    outputs. *)
val with_extra_rops :
  Circuit.t ->
  ([ `Old of Circuit.source | `New of int ] * [ `Old of Circuit.source | `New of int ])
  list ->
  [ `Old of Circuit.source | `New of int ] array ->
  Circuit.t

(** [rename_vars c ~arity ~mapping] re-embeds a circuit over variables
    [x1..xk] into arity [arity], sending variable [i+1] (1-based) to
    [mapping.(i)]. Used to lift support-projected sub-circuits back to the
    full input space.

    Precondition (checked, [Invalid_argument]): [mapping] must be injective
    with every target in [1..arity] — identity, permutations and injections
    into a larger arity are all fine; aliasing two variables onto one
    target is always a caller bug and is rejected. A variable of [c] beyond
    [Array.length mapping] is only rejected if the circuit actually uses
    it. *)
val rename_vars : Circuit.t -> arity:int -> mapping:int array -> Circuit.t
