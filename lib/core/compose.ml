module Literal = Mm_boolfun.Literal

type remap = Circuit.source -> Circuit.source

let merge_parallel circuits =
  match circuits with
  | [] -> invalid_arg "Compose.merge_parallel: empty"
  | first :: _ ->
    let arity = first.Circuit.arity in
    let rop_kind = first.Circuit.rop_kind in
    List.iter
      (fun c ->
        if c.Circuit.arity <> arity then
          invalid_arg "Compose.merge_parallel: arity mismatch";
        if c.Circuit.rop_kind <> rop_kind then
          invalid_arg "Compose.merge_parallel: R-op kind mismatch")
      circuits;
    let total_steps =
      List.fold_left (fun acc c -> acc + Circuit.steps_per_leg c) 0 circuits
    in
    (* per-step shared BE of the merged schedule: within circuit i's window
       use its own BE (taken from its leg 0 when it has legs) *)
    let merged_be = Array.make (max 1 total_steps) Literal.Const0 in
    let offsets = ref [] in
    let off = ref 0 in
    List.iter
      (fun c ->
        offsets := !off :: !offsets;
        let steps = Circuit.steps_per_leg c in
        for s = 0 to steps - 1 do
          merged_be.(!off + s) <-
            (if Circuit.n_legs c > 0 then c.Circuit.legs.(0).(s).Circuit.be
             else Literal.Const0)
        done;
        off := !off + steps)
      circuits;
    let offsets = List.rev !offsets in
    (* build legs: each sub-leg becomes a full-length leg holding outside
       its window (TE = shared BE of that step) *)
    let legs = ref [] in
    let leg_base = ref [] in
    let base = ref 0 in
    List.iter2
      (fun c step_off ->
        leg_base := !base :: !leg_base;
        Array.iter
          (fun sub_leg ->
            let leg =
              Array.init total_steps (fun s ->
                  if s >= step_off && s < step_off + Array.length sub_leg then
                    let op = sub_leg.(s - step_off) in
                    (* the window keeps the sub-circuit's TE; its BE is the
                       merged rail by construction *)
                    { Circuit.te = op.Circuit.te; be = merged_be.(s) }
                  else { Circuit.te = merged_be.(s); be = merged_be.(s) })
            in
            legs := leg :: !legs)
          c.Circuit.legs;
        base := !base + Circuit.n_legs c)
      circuits offsets;
    let leg_base = List.rev !leg_base in
    (* concatenate R-ops with source remapping *)
    let remaps = ref [] in
    let rops = ref [] in
    let rop_offset = ref 0 in
    List.iter2
      (fun c (step_off, lbase) ->
        let rop_off = !rop_offset in
        let remap = function
          | Circuit.From_literal _ as src -> src
          | Circuit.From_leg l ->
            (* legs hold after their window, so window-final = merged-final *)
            Circuit.From_leg (lbase + l)
          | Circuit.From_vop (l, s) ->
            if s = Circuit.steps_per_leg c - 1 then Circuit.From_leg (lbase + l)
            else Circuit.From_vop (lbase + l, step_off + s)
          | Circuit.From_rop r -> Circuit.From_rop (rop_off + r)
        in
        Array.iter
          (fun { Circuit.in1; in2 } ->
            rops := { Circuit.in1 = remap in1; in2 = remap in2 } :: !rops)
          c.Circuit.rops;
        rop_offset := rop_off + Circuit.n_rops c;
        remaps := remap :: !remaps)
      circuits
      (List.combine offsets leg_base);
    let shell =
      {
        Circuit.arity;
        rop_kind;
        legs = Array.of_list (List.rev !legs);
        rops = Array.of_list (List.rev !rops);
        outputs = [||];
      }
    in
    (shell, List.rev !remaps)

let with_outputs shell outputs =
  Circuit.make ~arity:shell.Circuit.arity ~rop_kind:shell.Circuit.rop_kind
    ~legs:shell.Circuit.legs ~rops:shell.Circuit.rops ~outputs ()

let with_extra_rops shell extra outputs =
  let base = Circuit.n_rops shell in
  let resolve = function
    | `Old src -> src
    | `New i ->
      if i < 0 || i >= List.length extra then
        invalid_arg "Compose.with_extra_rops: bad new-rop index";
      Circuit.From_rop (base + i)
  in
  let new_rops =
    List.mapi
      (fun i (a, b) ->
        let check = function
          | `New j when j >= i -> invalid_arg "Compose.with_extra_rops: forward ref"
          | `New _ | `Old _ -> ()
        in
        check a;
        check b;
        { Circuit.in1 = resolve a; in2 = resolve b })
      extra
  in
  Circuit.make ~arity:shell.Circuit.arity ~rop_kind:shell.Circuit.rop_kind
    ~legs:shell.Circuit.legs
    ~rops:(Array.append shell.Circuit.rops (Array.of_list new_rops))
    ~outputs:(Array.map resolve outputs)
    ()

let rename_vars c ~arity ~mapping =
  (* a non-injective mapping would silently alias two source variables onto
     one target — always a caller bug, so reject it up front *)
  let seen = Array.make (arity + 1) false in
  Array.iter
    (fun v ->
      if v < 1 || v > arity then
        invalid_arg "Compose.rename_vars: mapping target out of range";
      if seen.(v) then
        invalid_arg "Compose.rename_vars: mapping must be injective";
      seen.(v) <- true)
    mapping;
  let rename_literal = function
    | Literal.Const0 -> Literal.Const0
    | Literal.Const1 -> Literal.Const1
    | Literal.Pos i ->
      if i < 1 || i > Array.length mapping then
        invalid_arg "Compose.rename_vars: variable out of mapping";
      Literal.Pos mapping.(i - 1)
    | Literal.Neg i ->
      if i < 1 || i > Array.length mapping then
        invalid_arg "Compose.rename_vars: variable out of mapping";
      Literal.Neg mapping.(i - 1)
  in
  let rename_source = function
    | Circuit.From_literal l -> Circuit.From_literal (rename_literal l)
    | (Circuit.From_leg _ | Circuit.From_vop _ | Circuit.From_rop _) as s -> s
  in
  Circuit.make ~arity ~rop_kind:c.Circuit.rop_kind
    ~legs:
      (Array.map
         (Array.map (fun { Circuit.te; be } ->
              { Circuit.te = rename_literal te; be = rename_literal be }))
         c.Circuit.legs)
    ~rops:
      (Array.map
         (fun { Circuit.in1; in2 } ->
           { Circuit.in1 = rename_source in1; in2 = rename_source in2 })
         c.Circuit.rops)
    ~outputs:(Array.map rename_source c.Circuit.outputs)
    ()
