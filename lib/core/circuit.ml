module Literal = Mm_boolfun.Literal
module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec

type vop = { te : Literal.t; be : Literal.t }

type source =
  | From_literal of Literal.t
  | From_leg of int
  | From_vop of int * int
  | From_rop of int

type rop = { in1 : source; in2 : source }

type t = {
  arity : int;
  rop_kind : Rop.kind;
  legs : vop array array;
  rops : rop array;
  outputs : source array;
}

let check_source t ~rop_bound = function
  | From_literal (Literal.Pos i | Literal.Neg i) ->
    if i < 1 || i > t.arity then invalid_arg "Circuit: literal out of range"
  | From_literal (Literal.Const0 | Literal.Const1) -> ()
  | From_leg l ->
    if l < 0 || l >= Array.length t.legs then invalid_arg "Circuit: bad leg index"
  | From_vop (l, s) ->
    if l < 0 || l >= Array.length t.legs then invalid_arg "Circuit: bad leg index";
    if s < 0 || s >= Array.length t.legs.(l) then
      invalid_arg "Circuit: bad V-op step index"
  | From_rop r ->
    if r < 0 || r >= rop_bound then invalid_arg "Circuit: R-op input must precede it"

let validate t =
  if t.arity < 1 then invalid_arg "Circuit: arity < 1";
  (match Array.length t.legs with
   | 0 -> ()
   | _ ->
     let len = Array.length t.legs.(0) in
     if not (Array.for_all (fun leg -> Array.length leg = len) t.legs) then
       invalid_arg "Circuit: ragged legs");
  Array.iteri
    (fun i { in1; in2 } ->
      check_source t ~rop_bound:i in1;
      check_source t ~rop_bound:i in2)
    t.rops;
  Array.iter (check_source t ~rop_bound:(Array.length t.rops)) t.outputs

let make ~arity ?(rop_kind = Rop.Nor) ~legs ~rops ~outputs () =
  let t = { arity; rop_kind; legs; rops; outputs } in
  validate t;
  t

let leg_value t ~leg ~step =
  let ops = t.legs.(leg) in
  let acc = ref (Tt.const t.arity false) in
  for s = 0 to step do
    let { te; be } = ops.(s) in
    acc := Vop.apply ~n:t.arity !acc ~te ~be
  done;
  !acc

(* R-op values are computed in order; each call recomputes the chain. *)
let rop_values t =
  let values = Array.make (Array.length t.rops) (Tt.const t.arity false) in
  let source_val = function
    | From_literal l -> Literal.table t.arity l
    | From_leg l -> leg_value t ~leg:l ~step:(Array.length t.legs.(l) - 1)
    | From_vop (l, s) -> leg_value t ~leg:l ~step:s
    | From_rop r -> values.(r)
  in
  Array.iteri
    (fun i { in1; in2 } ->
      values.(i) <- Rop.apply t.rop_kind (source_val in1) (source_val in2))
    t.rops;
  values

let source_value_with t values = function
  | From_literal l -> Literal.table t.arity l
  | From_leg l -> leg_value t ~leg:l ~step:(Array.length t.legs.(l) - 1)
  | From_vop (l, s) -> leg_value t ~leg:l ~step:s
  | From_rop r -> values.(r)

let source_value t src = source_value_with t (rop_values t) src

let rop_value t i = (rop_values t).(i)

let output_tables t =
  let values = rop_values t in
  Array.map (source_value_with t values) t.outputs

let eval t row =
  let tables = output_tables t in
  let word = ref 0 in
  Array.iteri
    (fun o tt -> if Tt.eval tt row then word := !word lor (1 lsl o))
    tables;
  !word

let realizes t spec =
  if Spec.arity spec <> t.arity then Error 0
  else begin
    let tables = output_tables t in
    if Array.length tables <> Spec.output_count spec then Error 0
    else begin
      let bad = ref None in
      for row = (1 lsl t.arity) - 1 downto 0 do
        if Array.exists Fun.id
             (Array.mapi
                (fun o tt -> Tt.eval tt row <> Tt.eval (Spec.output spec o) row)
                tables)
        then bad := Some row
      done;
      match !bad with None -> Ok () | Some row -> Error row
    end
  end

(* ASAP dependency level of each R-op (1-based); literals, legs and V-op
   taps are level 0. The maximum is the R-phase critical path — the cycle
   lower bound a row-parallel scheduler chases. *)
let rop_levels t =
  let n = Array.length t.rops in
  let level = Array.make n 1 in
  Array.iteri
    (fun i { in1; in2 } ->
      let of_src = function
        | From_rop r -> level.(r)
        | From_literal _ | From_leg _ | From_vop _ -> 0
      in
      level.(i) <- 1 + max (of_src in1) (of_src in2))
    t.rops;
  level

let rop_depth t = Array.fold_left max 0 (rop_levels t)

let n_legs t = Array.length t.legs
let steps_per_leg t = if n_legs t = 0 then 0 else Array.length t.legs.(0)
let n_vops t = n_legs t * steps_per_leg t
let n_rops t = Array.length t.rops
let n_outputs t = Array.length t.outputs
let n_steps t = steps_per_leg t + n_rops t

module Int_set = Set.Make (Int)

(* Distinct tapped steps per leg, where leg-final references count as the
   last step. *)
let taps_per_leg t =
  let taps = Array.make (n_legs t) Int_set.empty in
  let note = function
    | From_leg l -> taps.(l) <- Int_set.add (Array.length t.legs.(l) - 1) taps.(l)
    | From_vop (l, s) -> taps.(l) <- Int_set.add s taps.(l)
    | From_literal _ | From_rop _ -> ()
  in
  Array.iter (fun { in1; in2 } -> note in1; note in2) t.rops;
  Array.iter note t.outputs;
  taps

let final_taps_only t =
  let ok = ref true in
  let check = function
    | From_vop (l, s) -> if s <> Array.length t.legs.(l) - 1 then ok := false
    | From_literal _ | From_leg _ | From_rop _ -> ()
  in
  Array.iter (fun { in1; in2 } -> check in1; check in2) t.rops;
  Array.iter check t.outputs;
  !ok

let n_devices t =
  let module LS = Set.Make (struct
    type nonrec t = Literal.t

    let compare = Stdlib.compare
  end) in
  let literal_inputs = ref LS.empty in
  Array.iter
    (fun { in1; in2 } ->
      List.iter
        (function
          | From_literal l -> literal_inputs := LS.add l !literal_inputs
          | From_leg _ | From_vop _ | From_rop _ -> ())
        [ in1; in2 ])
    t.rops;
  let leg_devices =
    Array.fold_left
      (fun acc taps -> acc + max 1 (Int_set.cardinal taps))
      0 (taps_per_leg t)
  in
  leg_devices + n_rops t + LS.cardinal !literal_inputs

let physicalize t =
  if final_taps_only t then t
  else begin
    let len = steps_per_leg t in
    let taps = taps_per_leg t in
    (* replica index for each (leg, tapped step) *)
    let mapping = Hashtbl.create 16 in
    let new_legs = ref [] in
    let count = ref 0 in
    Array.iteri
      (fun l tap_set ->
        let steps =
          if Int_set.is_empty tap_set then [ len - 1 ] else Int_set.elements tap_set
        in
        List.iter
          (fun s ->
            (* prefix up to s, then hold: TE = BE of the original schedule *)
            let replica =
              Array.init len (fun i ->
                  if i <= s then t.legs.(l).(i)
                  else { te = t.legs.(l).(i).be; be = t.legs.(l).(i).be })
            in
            Hashtbl.replace mapping (l, s) !count;
            new_legs := replica :: !new_legs;
            incr count)
          steps)
      taps;
    let remap = function
      | From_literal _ as src -> src
      | From_rop _ as src -> src
      | From_leg l -> From_leg (Hashtbl.find mapping (l, len - 1))
      | From_vop (l, s) -> From_leg (Hashtbl.find mapping (l, s))
    in
    let legs = Array.of_list (List.rev !new_legs) in
    let rops =
      Array.map (fun { in1; in2 } -> { in1 = remap in1; in2 = remap in2 }) t.rops
    in
    let outputs = Array.map remap t.outputs in
    make ~arity:t.arity ~rop_kind:t.rop_kind ~legs ~rops ~outputs ()
  end

let pp_source ppf = function
  | From_literal l -> Format.fprintf ppf "%s" (Literal.to_string l)
  | From_leg l -> Format.fprintf ppf "V%d" (l + 1)
  | From_vop (l, s) -> Format.fprintf ppf "V%d.%d" (l + 1) (s + 1)
  | From_rop r -> Format.fprintf ppf "R%d" (r + 1)

let pp ppf t =
  Format.fprintf ppf "@[<v>mixed-mode circuit: n=%d, %d legs x %d steps, %d %a R-ops, %d outputs"
    t.arity (n_legs t) (steps_per_leg t) (n_rops t) Rop.pp t.rop_kind
    (n_outputs t);
  Array.iteri
    (fun l ops ->
      Format.fprintf ppf "@,  leg V%d:" (l + 1);
      Array.iteri
        (fun s { te; be } ->
          Format.fprintf ppf " [V%d.%d TE=%s BE=%s]" (l + 1) (s + 1)
            (Literal.to_string te) (Literal.to_string be))
        ops)
    t.legs;
  Array.iteri
    (fun i { in1; in2 } ->
      Format.fprintf ppf "@,  R%d = %a(%a, %a)" (i + 1) Rop.pp t.rop_kind
        pp_source in1 pp_source in2)
    t.rops;
  Array.iteri
    (fun o src -> Format.fprintf ppf "@,  out%d = %a" (o + 1) pp_source src)
    t.outputs;
  Format.fprintf ppf "@]"
