(** The resident synthesis daemon.

    One [mmsynth serve] process holds the expensive state warm — the open
    persistent {!Mm_engine.Cache}, the NPN canonicalization tables, the
    resident OCaml heap — and answers {!Wire} requests over a Unix-domain
    socket (and optionally a loopback TCP port). Compared to a cold
    [mmsynth batch] run, a warm request skips process startup, cache load
    and NPN table construction entirely, and almost always answers straight
    from the cache.

    {2 Architecture}

    - One {e accept} thread per listener hands connections to per-connection
      {e reader} threads. Every frame a reader pulls off the wire is handed
      to its own handler thread, which computes the reply and writes it
      under the connection's write mutex — replies are matched by frame id,
      not arrival order, so pipelined clients ({!Client.Pool}) keep several
      requests in flight on one connection, and one slow (or
      fault-delayed) request never stalls the others.
    - Synthesis requests pass {e admission control}: a bounded pending queue
      of at most [max_pending] jobs. A full queue sheds the request with a
      typed [overloaded] reply (plus [retry_after_s]) instead of queueing
      without bound; a draining daemon refuses with [unavailable].
    - A single {e dispatcher} thread drains the queue in micro-batches of up
      to [max_batch] jobs per {!Mm_engine.Engine.run} call, so concurrent
      requests share one Domain pool spin-up and NPN-deduplicate against
      each other, all through the shared warm cache.
    - Each job's {e deadline} (request [params.deadline], else
      [default_deadline]) covers queue wait plus synthesis: a job whose
      deadline passed while queued is answered [deadline_exceeded] without
      touching the solver, and the remaining budget of the batch is enforced
      by the engine's {!Mm_engine.Deadline} manager.

    {2 Drain semantics}

    [SIGTERM], [SIGINT] (via {!run}) or a [shutdown] request triggers a
    {e graceful drain}: queued and in-flight jobs finish and their replies
    are delivered; new synthesis requests are refused with [unavailable];
    once the queue is empty, connected clients get [drain_grace] seconds to
    disconnect before remaining connections are closed; the cache is
    flushed and the socket file removed. A clean drain exits 0.

    {2 Fault injection}

    [fault] applies {!Mm_engine.Fault} rules at the [Conn] stage, keyed
    ["conn<N>/req<M>"] per request and ["accept/conn<N>"] at accept time:
    [Crash] drops the connection without a reply (the client sees a reset;
    the daemon must not crash), [Delay] slows that one response (never the
    rest of the connection), [Refuse] closes the connection at accept
    before a frame is read (a partitioned shard), and [Kill] makes the
    whole daemon {!die} abruptly (a crashed shard the cluster router must
    fail over). Worker/solver faults are injected through the engine
    config as in batch mode. *)

module Engine = Mm_engine.Engine
module Fault = Mm_engine.Fault
module Json = Mm_report.Json

type config = {
  socket_path : string;
  tcp_port : int option;  (** also listen on 127.0.0.1:port *)
  engine : Engine.config;
      (** template for every batch; its [cache] is the daemon's warm cache *)
  max_pending : int;  (** admission bound on the queue (≥ 1) *)
  max_batch : int;  (** jobs per engine micro-batch (≥ 1) *)
  default_deadline : float option;
      (** per-request deadline when the request carries none *)
  drain_grace : float;  (** seconds to let clients disconnect on drain *)
  fault : Fault.t option;  (** [Conn]-stage injection plan *)
  log : (string -> unit) option;
  shard_id : string option;
      (** identity reported in [stats]/[health] snapshots (default: the
          socket path) so a router can attribute per-shard metrics *)
}

val config :
  ?tcp_port:int ->
  ?engine:Engine.config ->
  ?max_pending:int ->
  ?max_batch:int ->
  ?default_deadline:float ->
  ?drain_grace:float ->
  ?fault:Fault.t ->
  ?log:(string -> unit) ->
  ?shard_id:string ->
  socket_path:string ->
  unit ->
  config

type t

(** Bind, warm the NPN tables, spawn the accept/dispatcher threads.
    [Error] when the socket path is already served by a live daemon or
    cannot be bound. A stale socket file (no listener behind it) is
    replaced. *)
val start : config -> (t, string) result

(** Begin a graceful drain (idempotent, non-blocking). *)
val request_drain : t -> unit

(** Abrupt death, no drain: queued jobs are abandoned (their connection
    threads unwind with [unavailable]), listeners close immediately.
    Deterministic stand-in for [kill -9] in tests and the storm bench;
    also triggered by an injected [Fault.Kill]. Idempotent. Follow with
    {!wait} to join the (now exiting) threads. *)
val die : t -> unit

(** The daemon's reported identity: configured shard id, else socket
    path. *)
val shard_id : t -> string

val draining : t -> bool
val stopped : t -> bool

(** Active client connections right now. *)
val active_conns : t -> int

(** Block until fully drained, then join every thread, flush the cache and
    remove the socket file. *)
val wait : t -> unit

(** {!request_drain} + {!wait}. *)
val stop : t -> unit

(** The [stats] endpoint's JSON, for in-process consumers. *)
val stats_json : t -> Json.t

(** [start] + install SIGTERM/SIGINT→drain handlers + [wait]: the body of
    [mmsynth serve]. Returns when the daemon has drained. *)
val run : config -> (unit, string) result
