module Engine = Mm_engine.Engine
module Cache = Mm_engine.Cache
module Fault = Mm_engine.Fault
module Npn = Mm_engine.Npn
module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table
module Synth = Mm_core.Synth
module Circuit = Mm_core.Circuit

type config = {
  socket_path : string;
  tcp_port : int option;
  engine : Engine.config;
  max_pending : int;
  max_batch : int;
  default_deadline : float option;
  drain_grace : float;
  fault : Fault.t option;
  log : (string -> unit) option;
  shard_id : string option;
}

let config ?tcp_port ?(engine = Engine.config ()) ?(max_pending = 64)
    ?(max_batch = 16) ?default_deadline ?(drain_grace = 5.0) ?fault ?log
    ?shard_id ~socket_path () =
  {
    socket_path;
    tcp_port;
    engine;
    max_pending = max 1 max_pending;
    max_batch = max 1 max_batch;
    default_deadline;
    drain_grace = Float.max 0. drain_grace;
    fault;
    log;
    shard_id;
  }

type job = {
  spec : Spec.t;
  params : Wire.synth_params;
  enqueued_at : float;
  mutable reply : Wire.reply option;
}

type t = {
  cfg : config;
  stats : Stats.t;
  m : Mutex.t;
  work : Condition.t;  (* queue became non-empty, or drain began *)
  done_ : Condition.t;  (* a job got its reply, or the daemon stopped *)
  queue : job Queue.t;
  mutable draining : bool;
  mutable stopped : bool;
  mutable conns : int;
  mutable next_conn : int;
  mutable conn_threads : Thread.t list;
  (* self-pipes: written once, never drained, so every select sees them *)
  drain_r : Unix.file_descr;
  drain_w : Unix.file_descr;
  close_r : Unix.file_descr;
  close_w : Unix.file_descr;
  listeners : Unix.file_descr list;
  mutable listeners_closed : bool;
  mutable accept_threads : Thread.t list;
  mutable dispatcher : Thread.t option;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> match t.cfg.log with Some f -> f s | None -> ())
    fmt

let draining t = Mutex.protect t.m (fun () -> t.draining)
let stopped t = Mutex.protect t.m (fun () -> t.stopped)
let active_conns t = Mutex.protect t.m (fun () -> t.conns)
let shard_id t = Option.value t.cfg.shard_id ~default:t.cfg.socket_path

let stats_json t =
  let queue_depth, conns, draining =
    Mutex.protect t.m (fun () -> (Queue.length t.queue, t.conns, t.draining))
  in
  Stats.snapshot t.stats ~shard:(shard_id t) ~queue_depth ~active_conns:conns
    ~draining
    ~cache_entries:
      (Option.map
         (fun c -> (Cache.counters c).Cache.entries)
         t.cfg.engine.Engine.cache)

let request_drain t =
  let fresh =
    Mutex.protect t.m (fun () ->
        if t.draining then false
        else begin
          t.draining <- true;
          Condition.broadcast t.work;
          true
        end)
  in
  if fresh then begin
    log t "drain requested";
    ignore (Unix.write t.drain_w (Bytes.of_string "d") 0 1)
  end

(* Close the listening sockets exactly once (die and wait both want them
   gone; closing an fd twice could hit an unrelated reused descriptor). *)
let close_listeners t =
  let fds =
    Mutex.protect t.m (fun () ->
        if t.listeners_closed then []
        else begin
          t.listeners_closed <- true;
          t.listeners
        end)
  in
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds;
  if fds <> [] then
    try Sys.remove t.cfg.socket_path with Sys_error _ -> ()

(* Abrupt death — the simulated shard crash. No drain: queued jobs are
   abandoned (their waiters are answered [unavailable] so connection
   threads can unwind), listeners close immediately, and every thread is
   told to exit. Used by the fault plan's [Kill] action and by the storm
   harness to kill a shard mid-run. *)
let die t =
  let fresh =
    Mutex.protect t.m (fun () ->
        if t.stopped then false
        else begin
          t.draining <- true;
          t.stopped <- true;
          Queue.clear t.queue;
          Condition.broadcast t.work;
          Condition.broadcast t.done_;
          true
        end)
  in
  if fresh then begin
    log t "killed (abrupt, no drain)";
    ignore (Unix.write t.drain_w (Bytes.of_string "d") 0 1);
    ignore (Unix.write t.close_w (Bytes.of_string "c") 0 1);
    close_listeners t
  end

(* ---- dispatcher ------------------------------------------------------ *)

let verdict_of (r : Engine.job_result) =
  match (r.Engine.provenance, r.Engine.circuit, r.Engine.error) with
  | Engine.Exact, Some _, _ -> "sat"
  | Engine.From_atlas, Some _, _ -> "sat"
  | (Engine.Via_baseline | Engine.Via_heuristic), Some _, _ -> "fallback"
  | _, None, Some _ -> "error"
  | _, None, None ->
    let timed_out =
      r.Engine.report.Synth.attempts = []
      || List.exists
           (fun a -> a.Synth.verdict = Synth.Timeout)
           r.Engine.report.Synth.attempts
    in
    if timed_out then "timeout" else "unsat"

let result_json ~(job : job) ~(r : Engine.job_result) ~queue_wait ~synth_s =
  let circuit_json =
    match r.Engine.circuit with
    | None -> Json.Null
    | Some c -> (
      (* Emit produces a JSON string; parse it so the reply nests it as an
         object instead of double-encoding *)
      match Json.of_string (Mm_core.Emit.to_json c) with
      | Ok j -> j
      | Error _ -> Json.String (Mm_core.Emit.to_json c))
  in
  let metrics =
    match r.Engine.circuit with
    | None -> []
    | Some c ->
      [
        ("n_rops", Json.Int (Circuit.n_rops c));
        ("n_steps", Json.Int (Circuit.n_steps c));
        ("n_devices", Json.Int (Circuit.n_devices c));
      ]
  in
  Json.Obj
    ([
       ("spec", Json.String (Spec.name job.spec));
       ("verdict", Json.String (verdict_of r));
       ( "provenance",
         Json.String
           (match r.Engine.provenance with
            | Engine.Exact -> "exact"
            | Engine.From_atlas -> "atlas"
            | Engine.Via_baseline -> "baseline"
            | Engine.Via_heuristic -> "heuristic") );
       ("atlas", Json.Bool (r.Engine.provenance = Engine.From_atlas));
       ("optimal", Json.Bool r.Engine.optimal);
       ("shared", Json.Bool r.Engine.shared);
       ( "class",
         match r.Engine.class_rep with
         | None -> Json.Null
         | Some rep -> Json.String (Printf.sprintf "%04x" (Tt.to_int rep)) );
       ("circuit", circuit_json);
       ( "error",
         match r.Engine.error with
         | None -> Json.Null
         | Some (Engine.Crashed { exn; _ }) -> Json.String exn
         | Some (Engine.Verify_failed { row }) ->
           Json.String (Printf.sprintf "verification failed on row %d" row) );
       ("queue_wait_s", Json.Float queue_wait);
       ("synth_s", Json.Float synth_s);
     ]
    @ metrics)

let degrade_of_tag = function
  | Some "baseline" -> Some Engine.Use_baseline
  | Some "heuristic" -> Some Engine.Use_heuristic
  | Some "none" -> Some Engine.No_fallback
  | Some _ | None -> None

(* Run one micro-batch: answer jobs whose deadline already passed while
   queued, group the rest by effective fallback (the engine applies one
   degradation policy per run), and hand each group to Engine.run with the
   tightest per-call timeout and remaining deadline of its members. *)
let process_batch t jobs =
  let now = Unix.gettimeofday () in
  let deadline_of (j : job) =
    match j.params.Wire.deadline with
    | Some d -> Some d
    | None -> t.cfg.default_deadline
  in
  let expired, runnable =
    List.partition
      (fun (j : job) ->
        match deadline_of j with
        | Some d -> now -. j.enqueued_at >= d
        | None -> false)
      jobs
  in
  List.iter
    (fun (j : job) ->
      Stats.observe_queue_wait t.stats (now -. j.enqueued_at);
      j.reply <-
        Some
          (Wire.Err
             {
               Wire.code = Wire.Deadline_exceeded;
               msg =
                 Printf.sprintf "deadline passed after %.3fs in queue"
                   (now -. j.enqueued_at);
               retry_after_s = None;
             }))
    expired;
  let groups = Hashtbl.create 4 in
  List.iter
    (fun (j : job) ->
      let fb =
        match degrade_of_tag j.params.Wire.fallback with
        | Some fb -> fb
        | None -> t.cfg.engine.Engine.fallback
      in
      Hashtbl.replace groups fb
        (j :: Option.value (Hashtbl.find_opt groups fb) ~default:[]))
    runnable;
  Hashtbl.iter
    (fun fallback group ->
      let group = Array.of_list (List.rev group) in
      let timeout =
        Array.fold_left
          (fun acc (j : job) ->
            match j.params.Wire.timeout with
            | Some tmo -> Float.min acc tmo
            | None -> acc)
          t.cfg.engine.Engine.timeout_per_call group
      in
      let deadline =
        Array.fold_left
          (fun acc (j : job) ->
            match deadline_of j with
            | None -> acc
            | Some d ->
              let remaining = d -. (now -. j.enqueued_at) in
              Some
                (match acc with
                 | None -> remaining
                 | Some a -> Float.min a remaining))
          None group
      in
      let cfg =
        { t.cfg.engine with Engine.timeout_per_call = timeout;
          deadline; fallback }
      in
      let specs = Array.map (fun (j : job) -> j.spec) group in
      match Engine.run cfg specs with
      | results, summary ->
        Stats.note_batch t.stats summary;
        Array.iteri
          (fun i (j : job) ->
            Stats.observe_queue_wait t.stats (now -. j.enqueued_at);
            Stats.observe_synth t.stats summary.Engine.wall_s;
            j.reply <-
              Some
                (Wire.Result
                   (result_json ~job:j ~r:results.(i)
                      ~queue_wait:(now -. j.enqueued_at)
                      ~synth_s:summary.Engine.wall_s)))
          group
      | exception e ->
        let msg = Printexc.to_string e in
        log t "engine batch failed: %s" msg;
        Array.iter
          (fun (j : job) ->
            j.reply <-
              Some
                (Wire.Err
                   { Wire.code = Wire.Internal; msg; retry_after_s = None }))
          group)
    groups

let dispatcher_loop t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.draining && not t.stopped do
      Condition.wait t.work t.m
    done;
    if t.stopped then begin
      (* abrupt death: abandon queued work, wake every waiter *)
      Queue.clear t.queue;
      Condition.broadcast t.done_;
      Mutex.unlock t.m
    end
    else if not (Queue.is_empty t.queue) then begin
      let batch = ref [] in
      while (not (Queue.is_empty t.queue)) && List.length !batch < t.cfg.max_batch
      do
        batch := Queue.pop t.queue :: !batch
      done;
      let batch = List.rev !batch in
      Mutex.unlock t.m;
      process_batch t batch;
      Mutex.lock t.m;
      Condition.broadcast t.done_;
      Mutex.unlock t.m;
      loop ()
    end
    else begin
      (* draining and the queue is empty: every accepted job has its reply.
         Give connected clients a grace window to collect replies and hang
         up before the remaining connections are closed. *)
      Mutex.unlock t.m;
      let t0 = Unix.gettimeofday () in
      while
        Mutex.protect t.m (fun () -> t.conns) > 0
        && Unix.gettimeofday () -. t0 < t.cfg.drain_grace
      do
        Thread.delay 0.02
      done;
      Mutex.protect t.m (fun () ->
          t.stopped <- true;
          Condition.broadcast t.done_);
      ignore (Unix.write t.close_w (Bytes.of_string "c") 0 1);
      Option.iter Cache.flush t.cfg.engine.Engine.cache;
      log t "drained"
    end
  in
  loop ()

(* ---- per-connection handling ---------------------------------------- *)

let health_json t =
  let queue_depth, draining =
    Mutex.protect t.m (fun () -> (Queue.length t.queue, t.draining))
  in
  Json.Obj
    [
      ("status", Json.String (if draining then "draining" else "ok"));
      ("shard", Json.String (shard_id t));
      ("protocol_version", Json.Int Wire.protocol_version);
      ("uptime_s", Json.Float (Stats.uptime_s t.stats));
      ("queue_depth", Json.Int queue_depth);
    ]

(* Admission + synchronous wait for the dispatcher's reply. *)
let submit_synth t spec params =
  let job =
    { spec; params; enqueued_at = Unix.gettimeofday (); reply = None }
  in
  let admitted =
    Mutex.protect t.m (fun () ->
        if t.draining then
          `Refused
            { Wire.code = Wire.Unavailable; msg = "daemon is draining";
              retry_after_s = None }
        else if Queue.length t.queue >= t.cfg.max_pending then
          `Refused
            { Wire.code = Wire.Overloaded;
              msg =
                Printf.sprintf "pending queue full (%d jobs)"
                  t.cfg.max_pending;
              retry_after_s = Some 1.0 }
        else begin
          Queue.push job t.queue;
          Condition.signal t.work;
          `Admitted
        end)
  in
  match admitted with
  | `Refused e -> Wire.Err e
  | `Admitted ->
    Mutex.protect t.m (fun () ->
        while job.reply = None && not t.stopped do
          Condition.wait t.done_ t.m
        done;
        match job.reply with
        | Some r -> r
        | None ->
          Wire.Err
            { Wire.code = Wire.Unavailable; msg = "daemon stopped";
              retry_after_s = None })

(* Returns the response payload plus whether to drain after replying. *)
let handle_payload t payload =
  match Json.of_string payload with
  | Error msg ->
    ( Wire.error_json ~id:0
        { Wire.code = Wire.Bad_request; msg; retry_after_s = None },
      Wire.Bad_request |> Option.some,
      false )
  | Ok j -> (
    match Wire.request_of_json j with
    | Error (id, msg) ->
      ( Wire.error_json ~id
          { Wire.code = Wire.Bad_request; msg; retry_after_s = None },
        Some Wire.Bad_request,
        false )
    | Ok (id, req) -> (
      let op =
        match req with
        | Wire.Synth _ -> "synth"
        | Wire.Stats -> "stats"
        | Wire.Health -> "health"
        | Wire.Ping -> "ping"
        | Wire.Shutdown -> "shutdown"
      in
      Stats.note_request t.stats ~op;
      match req with
      | Wire.Ping ->
        (Wire.ok_json ~id (Json.Obj [ ("pong", Json.Bool true) ]), None, false)
      | Wire.Health -> (Wire.ok_json ~id (health_json t), None, false)
      | Wire.Stats -> (Wire.ok_json ~id (stats_json t), None, false)
      | Wire.Shutdown ->
        ( Wire.ok_json ~id (Json.Obj [ ("draining", Json.Bool true) ]),
          None,
          true )
      | Wire.Synth { spec; params } -> (
        match submit_synth t spec params with
        | Wire.Result r -> (Wire.ok_json ~id r, None, false)
        | Wire.Err e -> (Wire.error_json ~id e, Some e.Wire.code, false))))

(* One reader loop per connection; every frame is handed to its own
   handler thread, which computes the reply and writes it under the
   connection's write mutex. Replies are matched by frame id, not by
   order, so a pipelined client can keep several requests in flight on one
   connection and a [Fault.Delay] on one request never stalls the others —
   the delay sleeps inside that request's handler, while the reader keeps
   accepting frames and the dispatcher keeps batching unrelated jobs. The
   reader waits for in-flight handlers before closing the fd (a write to a
   closed-and-reused descriptor could hit an unrelated socket). *)
let conn_loop t fd conn_id =
  let reqs = ref 0 in
  let wm = Mutex.create () in  (* one frame write at a time *)
  let im = Mutex.create () in
  let idle = Condition.create () in
  let inflight = ref 0 in
  let handler_done () =
    Mutex.protect im (fun () ->
        decr inflight;
        if !inflight = 0 then Condition.broadcast idle)
  in
  let handle ~delay payload () =
    let t0 = Unix.gettimeofday () in
    (match delay with Some s -> Unix.sleepf s | None -> ());
    let response, err, drain_after = handle_payload t payload in
    (match err with
     | None -> Stats.note_reply_ok t.stats
     | Some code -> Stats.note_reply_err t.stats code);
    Stats.observe_total t.stats (Unix.gettimeofday () -. t0);
    (match
       Mutex.protect wm (fun () ->
           Wire.write_frame fd (Json.to_string response))
     with
     | Error _ -> Stats.note_conn_dropped t.stats
     | Ok () -> if drain_after then request_drain t);
    handler_done ()
  in
  let rec loop () =
    match Unix.select [ fd; t.close_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
    | ready, _, _ ->
      if List.mem t.close_r ready then ()
      else (
        match Wire.read_frame fd with
        | Error _ -> ()  (* client hung up or sent garbage framing *)
        | Ok payload -> (
          incr reqs;
          let key = Printf.sprintf "conn%d/req%d" conn_id !reqs in
          let injected =
            match t.cfg.fault with
            | None -> None
            | Some f -> Fault.decide f ~stage:Fault.Conn ~key
          in
          match injected with
          | Some (Fault.Crash | Fault.Refuse) ->
            (* injected connection drop: vanish without a reply *)
            log t "conn%d: injected drop at %s" conn_id key;
            Stats.note_conn_dropped t.stats
          | Some Fault.Kill ->
            (* injected shard crash: the whole daemon dies, abruptly *)
            log t "conn%d: injected shard kill at %s" conn_id key;
            die t
          | (Some (Fault.Delay _ | Fault.Unknown_result) | None) as inj ->
            let delay =
              match inj with Some (Fault.Delay s) -> Some s | _ -> None
            in
            Mutex.protect im (fun () -> incr inflight);
            ignore (Thread.create (handle ~delay payload) ());
            loop ()))
  in
  (try loop () with _ -> ());
  (* let in-flight handlers deliver (or fail) their replies first *)
  Mutex.protect im (fun () ->
      while !inflight > 0 do
        Condition.wait idle im
      done);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.protect t.m (fun () -> t.conns <- t.conns - 1)

let accept_loop t lfd =
  let rec loop () =
    match Unix.select [ lfd; t.drain_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
    | ready, _, _ ->
      if List.mem t.drain_r ready then ()
      else (
        match Unix.accept lfd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error _ -> if draining t then () else loop ()
        | fd, _ ->
          let conn_id =
            Mutex.protect t.m (fun () ->
                t.next_conn <- t.next_conn + 1;
                t.next_conn)
          in
          let refused =
            match t.cfg.fault with
            | None -> false
            | Some f ->
              Fault.decide f ~stage:Fault.Conn
                ~key:(Printf.sprintf "accept/conn%d" conn_id)
              = Some Fault.Refuse
          in
          if refused then begin
            (* injected partition: the shard is unreachable — close before
               reading a single frame, as a dead network path would *)
            log t "conn%d: injected partition (refused at accept)" conn_id;
            Stats.note_conn_dropped t.stats;
            (try Unix.close fd with Unix.Unix_error _ -> ());
            loop ()
          end
          else begin
            (* cap mid-frame stalls so a wedged client cannot pin a thread *)
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO 30.
             with Unix.Unix_error _ -> ());
            Stats.note_conn_accepted t.stats;
            Mutex.protect t.m (fun () -> t.conns <- t.conns + 1);
            let th = Thread.create (fun () -> conn_loop t fd conn_id) () in
            Mutex.protect t.m (fun () ->
                t.conn_threads <- th :: t.conn_threads);
            loop ()
          end)
  in
  loop ()

(* ---- lifecycle ------------------------------------------------------- *)

let bind_unix path =
  (* A stale socket file (daemon died without cleanup) is replaced; a live
     one (something accepts connections) is an address conflict. *)
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then Error (Printf.sprintf "%s: a daemon is already listening" path)
    else begin
      (try Sys.remove path with Sys_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

let start cfg =
  (* a dropped client must surface as EPIPE on write, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match bind_unix cfg.socket_path with
  | Error _ as e -> e
  | Ok () -> (
    match
      let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path)
       with e -> (try Unix.close lfd with _ -> ()); raise e);
      Unix.listen lfd 64;
      let listeners =
        match cfg.tcp_port with
        | None -> [ lfd ]
        | Some port ->
          let tfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt tfd Unix.SO_REUSEADDR true;
          (try
             Unix.bind tfd
               (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
             Unix.listen tfd 64
           with e ->
             (try Unix.close tfd with _ -> ());
             (try Unix.close lfd with _ -> ());
             (try Sys.remove cfg.socket_path with Sys_error _ -> ());
             raise e);
          [ lfd; tfd ]
      in
      (* warm the NPN tables so the first request pays nothing *)
      ignore (Npn.canon (Tt.of_int 4 0x1ee1));
      ignore (Npn.canon (Tt.of_int 3 0x96));
      let drain_r, drain_w = Unix.pipe () in
      let close_r, close_w = Unix.pipe () in
      let t =
        {
          cfg;
          stats = Stats.create ();
          m = Mutex.create ();
          work = Condition.create ();
          done_ = Condition.create ();
          queue = Queue.create ();
          draining = false;
          stopped = false;
          conns = 0;
          next_conn = 0;
          conn_threads = [];
          drain_r;
          drain_w;
          close_r;
          close_w;
          listeners;
          listeners_closed = false;
          accept_threads = [];
          dispatcher = None;
        }
      in
      t.dispatcher <- Some (Thread.create dispatcher_loop t);
      t.accept_threads <-
        List.map (fun lfd -> Thread.create (accept_loop t) lfd) listeners;
      log t "listening on %s%s" cfg.socket_path
        (match cfg.tcp_port with
         | None -> ""
         | Some p -> Printf.sprintf " and 127.0.0.1:%d" p);
      t
    with
    | t -> Ok t
    | exception Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)))

let wait t =
  Mutex.protect t.m (fun () ->
      while not t.stopped do
        Condition.wait t.done_ t.m
      done);
  Option.iter Thread.join t.dispatcher;
  List.iter Thread.join t.accept_threads;
  let conn_threads = Mutex.protect t.m (fun () -> t.conn_threads) in
  List.iter Thread.join conn_threads;
  close_listeners t;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.drain_r; t.drain_w; t.close_r; t.close_w ]

let stop t =
  request_drain t;
  wait t

let run cfg =
  let term = Atomic.make false in
  let install s =
    try Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set term true))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  install Sys.sigterm;
  install Sys.sigint;
  match start cfg with
  | Error _ as e -> e
  | Ok t ->
    (* poll: signal handlers only set a flag (async-signal-safe); this loop
       turns the flag into a drain from a normal thread context *)
    let rec poll () =
      if stopped t then ()
      else begin
        if Atomic.get term && not (draining t) then request_drain t;
        Thread.delay 0.1;
        poll ()
      end
    in
    poll ();
    wait t;
    Ok ()
