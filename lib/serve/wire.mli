(** The mmsynth wire protocol: length-prefixed, versioned JSON frames.

    {2 Frame layout}

    Every message — request and response — is one frame:
    {v
      +----------------+---------------------------+
      | 4 bytes        | N bytes                   |
      | N, big-endian  | UTF-8 JSON payload        |
      +----------------+---------------------------+
    v}
    [N] is bounded by {!max_frame}; an oversized prefix is a protocol
    error, not an allocation request. Frames never span messages and
    messages never span frames, so a reader is always one [read] loop away
    from a complete JSON document.

    {2 Payloads}

    Requests: [{"v": 1, "id": <int>, "op": <op>, ...}] where [op] is one of
    [synth] (with ["spec"] and optional ["params"]), [stats], [health],
    [ping], [shutdown]. The version field is checked first; a mismatch is
    answered with a [bad_request] error naming {!protocol_version}.

    Responses: [{"v": 1, "id": <id>, "ok": true, "result": {...}}] or
    [{"v": 1, "id": <id>, "ok": false, "error": {"code": <code>,
    "msg": ..., "retry_after_s": ...?}}]. Error codes are the typed
    {!error_code} set — notably [overloaded] (admission queue full, the
    load-shedding reply) and [unavailable] (daemon draining). *)

module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec

val protocol_version : int

(** Hard bound on a frame payload (8 MiB). *)
val max_frame : int

type io_error =
  | Closed  (** EOF, reset or broken pipe mid-frame *)
  | Too_large of int  (** advertised payload length over {!max_frame} *)
  | Malformed of string  (** framing or JSON damage *)

val pp_io_error : io_error -> string

(** Blocking single-frame I/O over a connected socket. Both loop over
    partial reads/writes; all [Unix] errors map to [Closed]. *)
val write_frame : Unix.file_descr -> string -> (unit, io_error) result

val read_frame : Unix.file_descr -> (string, io_error) result

(** Per-request knobs carried in ["params"], all optional. [deadline] is
    seconds from submission: queue wait counts against it (admission
    control refuses to start jobs whose deadline already passed). *)
type synth_params = {
  timeout : float option;  (** per-SAT-call budget, seconds *)
  deadline : float option;  (** whole-request budget, seconds *)
  fallback : string option;  (** ["none" | "baseline" | "heuristic"] *)
}

val no_params : synth_params

type request =
  | Synth of { spec : Spec.t; params : synth_params }
  | Stats
  | Health
  | Ping
  | Shutdown

type error_code =
  | Bad_request
  | Overloaded  (** admission queue full: shed, retry later *)
  | Unavailable  (** draining: no new work accepted *)
  | Deadline_exceeded
  | Internal

val code_tag : error_code -> string
val code_of_tag : string -> error_code option

type error = { code : error_code; msg : string; retry_after_s : float option }

type reply = Result of Json.t | Err of error

(** Spec as wire JSON: [{"name", "arity", "outputs": ["0110", ...]}]. *)
val spec_to_json : Spec.t -> Json.t

val spec_of_json : Json.t -> (Spec.t, string) result

val request_to_json : id:int -> request -> Json.t

(** [Error (id, msg)] is answered with a [bad_request] frame carrying
    [id] (0 when no id could be read). *)
val request_of_json : Json.t -> (int * request, int * string) result

val ok_json : id:int -> Json.t -> Json.t
val error_json : id:int -> error -> Json.t

(** Decode a response; [Error] is a transport-level protocol violation. *)
val reply_of_json : Json.t -> (int * reply, string) result
