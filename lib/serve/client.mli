(** Pipelined client for the {!Server} wire protocol.

    One [t] wraps one connection. Requests are {e pipelined}: any number of
    threads may have requests in flight on the same connection — frame
    writes are serialized under a mutex, and a dedicated reader thread
    demultiplexes replies to their waiters by frame id (the daemon handles
    each frame in its own thread, so replies can arrive in any order).
    All failures are returned, never raised: transport problems
    ([Error msg]) are distinct from typed daemon refusals ([Ok (Err _)]).

    {!Pool} multiplexes a bounded set of these pipelined connections to
    one daemon, so a router (or any fan-out caller) gets high in-flight
    concurrency without a connection per request.

    {!retry} turns [overloaded] sheds into jittered, budgeted backoff
    honoring the server's [retry_after_s] hint — the polite way to ride
    out a load spike instead of failing on the first shed. *)

module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec

type addr = Unix_sock of string | Tcp of string * int

val pp_addr : addr -> string

type t

(** [connect addr] — [read_timeout] (default 60 s) bounds each reply wait
    so a hung daemon cannot block a caller forever (the connection is
    still usable after one request times out; the late reply, if any, is
    discarded by id). *)
val connect : ?read_timeout:float -> addr -> (t, string) result

val close : t -> unit

(** The connection has not seen a transport error and is not closed.
    A false return is sticky: reconnect to recover. *)
val alive : t -> bool

(** [wait_ready addr] polls [connect] until the daemon accepts (startup
    race helper for tests and scripts). Total budget [timeout] seconds
    (default 5). *)
val wait_ready : ?timeout:float -> addr -> (t, string) result

(** Backoff policy for {e shed} ([overloaded]) replies: up to [max_tries]
    attempts within [budget_s] seconds total (defaults 8 and 2.0), sleeping
    the server's [retry_after_s] hint (default 50 ms when absent) doubled
    per attempt and jittered in [0.5, 1.5) — deterministic per [seed]. *)
type retry

val retry : ?budget_s:float -> ?max_tries:int -> ?seed:int -> unit -> retry

(** Send, block for the id-matched reply. With [?retry], [overloaded]
    refusals are retried under the policy; every other outcome returns
    immediately. *)
val request : ?retry:retry -> t -> Wire.request -> (Wire.reply, string) result

val synth :
  ?timeout:float ->
  ?deadline:float ->
  ?fallback:string ->
  ?retry:retry ->
  t ->
  Spec.t ->
  (Wire.reply, string) result

val stats : t -> (Wire.reply, string) result
val health : t -> (Wire.reply, string) result
val ping : t -> (Wire.reply, string) result

(** Ask the daemon to drain. The [ok] reply arrives before the drain. *)
val shutdown : t -> (Wire.reply, string) result

(** A bounded pool of pipelined connections to one daemon.

    Connections are opened lazily, reused by least-in-flight, evicted as
    soon as they die, and transparently re-dialed once when a request
    rides a connection that breaks under it. [size] (default 4) bounds
    the file descriptors spent per shard, not the in-flight requests —
    each pooled connection pipelines. *)
module Pool : sig
  type p

  val create : ?size:int -> ?read_timeout:float -> addr -> p
  val size : p -> int

  val request :
    ?retry:retry -> ?attempts:int -> p -> Wire.request ->
    (Wire.reply, string) result

  val synth :
    ?timeout:float ->
    ?deadline:float ->
    ?fallback:string ->
    ?retry:retry ->
    p ->
    Spec.t ->
    (Wire.reply, string) result

  val close : p -> unit
end
