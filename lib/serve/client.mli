(** Synchronous client for the {!Server} wire protocol.

    One [t] wraps one connection; requests are serialized under a mutex
    (one in-flight request per connection — the daemon replies in order)
    and matched to replies by frame id. All failures are returned, never
    raised: transport problems ([Error msg]) are distinct from typed
    daemon refusals ([Ok (Err _)]). *)

module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec

type addr = Unix_sock of string | Tcp of string * int

type t

(** [connect addr] — [read_timeout] (default 60 s) bounds each reply wait
    so a hung daemon cannot block the client forever. *)
val connect : ?read_timeout:float -> addr -> (t, string) result

val close : t -> unit

(** [wait_ready addr] polls [connect] until the daemon accepts (startup
    race helper for tests and scripts). Total budget [timeout] seconds
    (default 5). *)
val wait_ready : ?timeout:float -> addr -> (t, string) result

(** One round trip: send, block for the matching reply. *)
val request : t -> Wire.request -> (Wire.reply, string) result

val synth :
  ?timeout:float ->
  ?deadline:float ->
  ?fallback:string ->
  t ->
  Spec.t ->
  (Wire.reply, string) result

val stats : t -> (Wire.reply, string) result
val health : t -> (Wire.reply, string) result
val ping : t -> (Wire.reply, string) result

(** Ask the daemon to drain. The [ok] reply arrives before the drain. *)
val shutdown : t -> (Wire.reply, string) result
