module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec

type addr = Unix_sock of string | Tcp of string * int

type t = { fd : Unix.file_descr; m : Mutex.t; mutable next_id : int }

let connect ?(read_timeout = 60.) addr =
  let mk () =
    match addr with
    | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (fd, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (fd, Unix.ADDR_INET (ip, port))
  in
  match mk () with
  | exception (Unix.Unix_error (e, _, _)) ->
    Error (Unix.error_message e)
  | exception Failure msg -> Error msg
  | fd, sockaddr -> (
    match Unix.connect fd sockaddr with
    | () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO read_timeout
       with Unix.Unix_error _ -> ());
      Ok { fd; m = Mutex.create (); next_id = 0 }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s"
           (match addr with
            | Unix_sock p -> p
            | Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
           (Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let wait_ready ?(timeout = 5.) addr =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match connect addr with
    | Ok _ as ok -> ok
    | Error msg ->
      if Unix.gettimeofday () -. t0 >= timeout then
        Error (Printf.sprintf "daemon not ready after %.1fs: %s" timeout msg)
      else begin
        Thread.delay 0.05;
        go ()
      end
  in
  go ()

let request t req =
  Mutex.protect t.m (fun () ->
      t.next_id <- t.next_id + 1;
      let id = t.next_id in
      let payload = Json.to_string (Wire.request_to_json ~id req) in
      match Wire.write_frame t.fd payload with
      | Error e -> Error (Wire.pp_io_error e)
      | Ok () -> (
        match Wire.read_frame t.fd with
        | Error e -> Error (Wire.pp_io_error e)
        | Ok resp -> (
          match Json.of_string resp with
          | Error msg -> Error (Printf.sprintf "bad reply JSON: %s" msg)
          | Ok j -> (
            match Wire.reply_of_json j with
            | Error msg -> Error (Printf.sprintf "bad reply: %s" msg)
            | Ok (rid, reply) ->
              if rid <> id && rid <> 0 then
                Error
                  (Printf.sprintf "reply id %d does not match request id %d"
                     rid id)
              else Ok reply))))

let synth ?timeout ?deadline ?fallback t spec =
  request t
    (Wire.Synth { spec; params = { Wire.timeout; deadline; fallback } })

let stats t = request t Wire.Stats
let health t = request t Wire.Health
let ping t = request t Wire.Ping
let shutdown t = request t Wire.Shutdown
