module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec
module Rng = Mm_device.Rng

type addr = Unix_sock of string | Tcp of string * int

let pp_addr = function
  | Unix_sock p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

(* ---- one pipelined connection ---------------------------------------- *)

(* A waiter parked until its id-matched reply (or a timeout / transport
   death) fills [outcome]. The slot stays in [pending] until its waiter
   removes it, so a reply that arrives after the waiter timed out is
   discarded silently instead of tripping the id-match check. *)
type slot = { mutable outcome : (Wire.reply, string) result option;
              issued_at : float }

type t = {
  fd : Unix.file_descr;
  wm : Mutex.t;  (* one frame write at a time *)
  m : Mutex.t;  (* pending table + liveness *)
  cv : Condition.t;
  pending : (int, slot) Hashtbl.t;
  read_timeout : float;
  mutable next_id : int;
  mutable dead : string option;
  mutable closing : bool;
  mutable reader : Thread.t option;
}

(* Transport death: every parked waiter gets the same error, present and
   future requests refuse immediately. *)
let fail_all t msg =
  Mutex.protect t.m (fun () ->
      if t.dead = None then t.dead <- Some msg;
      Hashtbl.iter
        (fun _ s -> if s.outcome = None then s.outcome <- Some (Error msg))
        t.pending;
      Condition.broadcast t.cv)

let sweep_timeouts t =
  let now = Unix.gettimeofday () in
  Mutex.protect t.m (fun () ->
      let fired = ref false in
      Hashtbl.iter
        (fun _ s ->
          if s.outcome = None && now -. s.issued_at >= t.read_timeout then begin
            s.outcome <-
              Some
                (Error
                   (Printf.sprintf "no reply within %.1fs" t.read_timeout));
            fired := true
          end)
        t.pending;
      if !fired then Condition.broadcast t.cv)

let dispatch t resp =
  match Json.of_string resp with
  | Error msg -> Some (Printf.sprintf "bad reply JSON: %s" msg)
  | Ok j -> (
    match Wire.reply_of_json j with
    | Error msg -> Some (Printf.sprintf "bad reply: %s" msg)
    | Ok (rid, reply) ->
      Mutex.protect t.m (fun () ->
          match Hashtbl.find_opt t.pending rid with
          | Some s when s.outcome = None ->
            s.outcome <- Some (Ok reply);
            Condition.broadcast t.cv
          | Some _ | None ->
            (* reply to a request whose waiter already timed out (or an id
               we never issued — the daemon answers unparseable frames
               with id 0): drop it, the stream itself is still healthy *)
            ());
      None)

(* The demultiplexer: one thread per connection pulls frames off the wire
   and fills waiter slots by frame id. It ticks (0.25 s select) so
   per-reply timeouts fire and [close] is prompt even when the daemon
   never answers. *)
let reader_loop t =
  let rec loop () =
    if Mutex.protect t.m (fun () -> t.closing || t.dead <> None) then ()
    else
      match Unix.select [ t.fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (e, _, _) ->
        fail_all t (Unix.error_message e)
      | [], _, _ ->
        sweep_timeouts t;
        loop ()
      | _ :: _, _, _ -> (
        match Wire.read_frame t.fd with
        | Error e -> fail_all t (Wire.pp_io_error e)
        | Ok resp -> (
          match dispatch t resp with
          | Some msg -> fail_all t msg
          | None ->
            sweep_timeouts t;
            loop ()))
  in
  loop ()

let connect ?(read_timeout = 60.) addr =
  (* A write racing the peer's hangup must surface as EPIPE -> Closed ->
     Error, not kill the whole process (routers hold connections to
     shards that die abruptly, by design). *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let mk () =
    match addr with
    | Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (fd, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (fd, Unix.ADDR_INET (ip, port))
  in
  match mk () with
  | exception (Unix.Unix_error (e, _, _)) ->
    Error (Unix.error_message e)
  | exception Failure msg -> Error msg
  | fd, sockaddr -> (
    match Unix.connect fd sockaddr with
    | () ->
      let t =
        {
          fd;
          wm = Mutex.create ();
          m = Mutex.create ();
          cv = Condition.create ();
          pending = Hashtbl.create 8;
          read_timeout = Float.max 0.1 read_timeout;
          next_id = 0;
          dead = None;
          closing = false;
          reader = None;
        }
      in
      t.reader <- Some (Thread.create reader_loop t);
      Ok t
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s" (pp_addr addr)
           (Unix.error_message e)))

let close t =
  let first =
    Mutex.protect t.m (fun () ->
        if t.closing then false
        else begin
          t.closing <- true;
          Condition.broadcast t.cv;
          true
        end)
  in
  if first then begin
    (* shutdown (not close) wakes a reader blocked mid-read with EOF *)
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.reader with
     | Some th -> ( try Thread.join th with _ -> ())
     | None -> ());
    fail_all t "client closed";
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let alive t = Mutex.protect t.m (fun () -> t.dead = None && not t.closing)

let wait_ready ?(timeout = 5.) addr =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    match connect addr with
    | Ok _ as ok -> ok
    | Error msg ->
      if Unix.gettimeofday () -. t0 >= timeout then
        Error (Printf.sprintf "daemon not ready after %.1fs: %s" timeout msg)
      else begin
        Thread.delay 0.05;
        go ()
      end
  in
  go ()

(* Pipelined request: register a slot, write the frame (only the write is
   serialized), park until the reader fills the slot. Any number of
   threads may have requests in flight on the same connection. *)
let request_once t req =
  let slot = { outcome = None; issued_at = Unix.gettimeofday () } in
  let registered =
    Mutex.protect t.m (fun () ->
        match t.dead with
        | Some msg -> Error msg
        | None ->
          if t.closing then Error "client closed"
          else begin
            t.next_id <- t.next_id + 1;
            Hashtbl.replace t.pending t.next_id slot;
            Ok t.next_id
          end)
  in
  match registered with
  | Error msg -> Error msg
  | Ok id -> (
    let payload = Json.to_string (Wire.request_to_json ~id req) in
    match Mutex.protect t.wm (fun () -> Wire.write_frame t.fd payload) with
    | Error e ->
      let msg = Wire.pp_io_error e in
      Mutex.protect t.m (fun () -> Hashtbl.remove t.pending id);
      fail_all t msg;
      Error msg
    | Ok () ->
      Mutex.lock t.m;
      while slot.outcome = None do
        Condition.wait t.cv t.m
      done;
      Hashtbl.remove t.pending id;
      Mutex.unlock t.m;
      (match slot.outcome with
       | Some r -> r
       | None -> Error "impossible: empty slot after wakeup"))

(* ---- retry policy for shed replies ------------------------------------ *)

type retry = { budget_s : float; max_tries : int; seed : int }

let retry ?(budget_s = 2.0) ?(max_tries = 8) ?(seed = 0) () =
  { budget_s = Float.max 0. budget_s; max_tries = max 1 max_tries; seed }

(* Retry [overloaded] refusals: back off by the server's [retry_after_s]
   hint (default 50 ms) doubled per attempt, jittered in [0.5, 1.5), and
   never past the remaining budget. Every other outcome — success, other
   errors, transport failure — returns immediately: only the typed
   "try again later" is worth trying again. *)
let with_retry retry f =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create (retry.seed lxor 0x52455452) in
  let rec go attempt =
    let r = f () in
    match r with
    | Ok (Wire.Err { Wire.code = Wire.Overloaded; retry_after_s; _ }) ->
      let elapsed = Unix.gettimeofday () -. t0 in
      let remaining = retry.budget_s -. elapsed in
      if attempt + 1 >= retry.max_tries || remaining <= 0. then r
      else begin
        let hint =
          match retry_after_s with Some s when s > 0. -> s | _ -> 0.05
        in
        let backoff =
          hint *. (2. ** float_of_int attempt) *. (0.5 +. Rng.float rng)
        in
        Thread.delay (Float.min backoff remaining);
        go (attempt + 1)
      end
    | r -> r
  in
  go 0

let request ?retry:r t req =
  match r with
  | None -> request_once t req
  | Some r -> with_retry r (fun () -> request_once t req)

let synth ?timeout ?deadline ?fallback ?retry t spec =
  request ?retry t
    (Wire.Synth { spec; params = { Wire.timeout; deadline; fallback } })

let stats t = request t Wire.Stats
let health t = request t Wire.Health
let ping t = request t Wire.Ping
let shutdown t = request t Wire.Shutdown

(* ---- connection pool --------------------------------------------------- *)

module Pool = struct
  let conn_request = request

  type entry = Free | Connecting | Live of t * int ref  (* conn, in-flight *)

  type p = {
    addr : addr;
    read_timeout : float;
    pm : Mutex.t;
    pcv : Condition.t;
    slots : entry array;
    mutable closed : bool;
  }

  let create ?(size = 4) ?(read_timeout = 60.) addr =
    {
      addr;
      read_timeout;
      pm = Mutex.create ();
      pcv = Condition.create ();
      slots = Array.make (max 1 size) Free;
      closed = false;
    }

  let size p = Array.length p.slots

  (* Pick the live connection with the fewest requests in flight; claim a
     [Free] slot (connecting outside the lock) when every live one is
     busier than a fresh connection would be, or none exists. Dead
     connections are evicted on sight. *)
  let acquire p =
    let to_close = ref [] in
    let choice =
      Mutex.protect p.pm (fun () ->
          if p.closed then `Closed
          else begin
            Array.iteri
              (fun i e ->
                match e with
                | Live (c, _) when not (alive c) ->
                  to_close := c :: !to_close;
                  p.slots.(i) <- Free
                | _ -> ())
              p.slots;
            let best = ref None in
            Array.iteri
              (fun i e ->
                match e with
                | Live (_, n) -> (
                  match !best with
                  | Some (_, m) when m <= !n -> ()
                  | _ -> best := Some (i, !n))
                | Free | Connecting -> ())
              p.slots;
            let free = Array.to_list p.slots |> List.exists (( = ) Free) in
            match !best with
            | Some (i, n) when n = 0 || not free ->
              (match p.slots.(i) with
               | Live (c, cnt) ->
                 incr cnt;
                 `Use (i, c)
               | _ -> assert false)
            | _ ->
              if free then begin
                let rec first i =
                  if i >= Array.length p.slots then None
                  else if p.slots.(i) = Free then Some i
                  else first (i + 1)
                in
                match first 0 with
                | Some i ->
                  p.slots.(i) <- Connecting;
                  `Connect i
                | None -> `Wait
              end
              else `Wait
          end)
    in
    List.iter close !to_close;
    match choice with
    | `Closed -> Error "pool closed"
    | `Use (i, c) -> Ok (i, c)
    | `Connect i -> (
      match connect ~read_timeout:p.read_timeout p.addr with
      | Ok c ->
        Mutex.protect p.pm (fun () ->
            if p.closed then p.slots.(i) <- Free
            else p.slots.(i) <- Live (c, ref 1);
            Condition.broadcast p.pcv);
        if Mutex.protect p.pm (fun () -> p.closed) then begin
          close c;
          Error "pool closed"
        end
        else Ok (i, c)
      | Error msg ->
        Mutex.protect p.pm (fun () ->
            p.slots.(i) <- Free;
            Condition.broadcast p.pcv);
        Error msg)
    | `Wait ->
      (* every slot is mid-connect: wait for one to settle, then retry *)
      Mutex.protect p.pm (fun () ->
          if not p.closed && Array.for_all (( <> ) Free) p.slots then
            Condition.wait p.pcv p.pm);
      Error "pool busy"

  let release p i c ~broken =
    let stale = ref None in
    Mutex.protect p.pm (fun () ->
        match p.slots.(i) with
        | Live (c', cnt) when c' == c ->
          decr cnt;
          if broken then begin
            stale := Some c';
            p.slots.(i) <- Free
          end;
          Condition.broadcast p.pcv
        | _ -> ());
    Option.iter close !stale

  let rec request ?retry:r ?(attempts = 2) p req =
    match acquire p with
    | Error "pool busy" when attempts > 0 ->
      request ?retry:r ~attempts:(attempts - 1) p req
    | Error msg -> Error msg
    | Ok (i, c) -> (
      let res = conn_request ?retry:r c req in
      (match res with
       | Error _ -> release p i c ~broken:true
       | Ok _ -> release p i c ~broken:false);
      match res with
      | Error _ when attempts > 0 && not (alive c) ->
        (* the connection died under us (daemon restarted, idle reset):
           one transparent re-dial on a fresh connection *)
        request ?retry:r ~attempts:(attempts - 1) p req
      | res -> res)

  let synth ?timeout ?deadline ?fallback ?retry p spec =
    request ?retry p
      (Wire.Synth { spec; params = { Wire.timeout; deadline; fallback } })

  let close p =
    let conns =
      Mutex.protect p.pm (fun () ->
          p.closed <- true;
          let cs =
            Array.to_list p.slots
            |> List.filter_map (function Live (c, _) -> Some c | _ -> None)
          in
          Array.fill p.slots 0 (Array.length p.slots) Free;
          Condition.broadcast p.pcv;
          cs)
    in
    List.iter close conns
end
