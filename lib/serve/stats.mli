(** Live statistics for the serve daemon: request/reply counters, the
    cumulative engine summary across all dispatched batches, and per-stage
    latency histograms (queue wait, synthesis, total round trip).

    All updates are mutex-protected — connection threads and the dispatcher
    share one registry. {!snapshot} renders the whole registry as one JSON
    object ([mmsynth-serve-stats-v5]) served verbatim by the [stats]
    endpoint; the engine sub-object is the shared
    {!Mm_engine.Engine.stats_to_json} schema. v4 adds the [shard] identity
    field so the cluster router and the storm bench can attribute
    per-shard metrics. *)

module Json = Mm_report.Json

(** Fixed-bucket log-scale latency histogram: 60 geometric buckets from
    1 µs up (ratio [10^(1/6)] ≈ 1.47, topping out above 10^4 s), O(1)
    observe, approximate percentiles (upper bucket bound, i.e. within one
    bucket ratio of the true value, conservative). *)
module Hist : sig
  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int

  (** [percentile t 0.95]; 0 when empty. *)
  val percentile : t -> float -> float

  val mean : t -> float
  val max_seen : t -> float

  (** [{"count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s"}]. *)
  val to_json : t -> Json.t
end

type t

val create : unit -> t
val uptime_s : t -> float

(** [note_request t ~op] with the wire op tag ("synth", "stats", ...). *)
val note_request : t -> op:string -> unit

val note_reply_ok : t -> unit
val note_reply_err : t -> Wire.error_code -> unit
val note_conn_accepted : t -> unit
val note_conn_dropped : t -> unit

(** Count of [overloaded]+[unavailable] replies (the shed rate numerator). *)
val shed_count : t -> int

(** One engine batch completed: accumulate its summary. *)
val note_batch : t -> Mm_engine.Engine.summary -> unit

val observe_queue_wait : t -> float -> unit
val observe_synth : t -> float -> unit
val observe_total : t -> float -> unit

(** Point-in-time gauges are passed by the server at snapshot time;
    [shard] is the daemon's identity (configured shard id, else its
    socket path). *)
val snapshot :
  t ->
  shard:string ->
  queue_depth:int ->
  active_conns:int ->
  draining:bool ->
  cache_entries:int option ->
  Json.t
