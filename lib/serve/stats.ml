module Json = Mm_report.Json
module Engine = Mm_engine.Engine

module Hist = struct
  (* Geometric buckets: bucket i covers [b0 * r^i, b0 * r^(i+1)) with
     b0 = 1e-6 s and r = 10^(1/6), so 6 buckets per decade and 60 buckets
     reach 10^4 s. Percentiles report the bucket's upper bound — at most
     one ratio (~47%) above the true value, never below it. *)
  let n_buckets = 60
  let b0 = 1e-6
  let per_decade = 6.

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum : float;
    mutable max_seen : float;
  }

  let create () =
    { counts = Array.make n_buckets 0; total = 0; sum = 0.; max_seen = 0. }

  let index x =
    if x <= b0 then 0
    else
      let i = int_of_float (Float.floor (Float.log10 (x /. b0) *. per_decade)) in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

  let observe t x =
    let x = Float.max 0. x in
    t.counts.(index x) <- t.counts.(index x) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. x;
    if x > t.max_seen then t.max_seen <- x

  let count t = t.total

  let bound i = b0 *. (10. ** (float_of_int (i + 1) /. per_decade))

  let percentile t p =
    if t.total = 0 then 0.
    else begin
      let rank =
        Float.max 1. (Float.round (p *. float_of_int t.total))
      in
      let rec go i cum =
        if i >= n_buckets then t.max_seen
        else
          let cum = cum + t.counts.(i) in
          if float_of_int cum >= rank then Float.min (bound i) t.max_seen
          else go (i + 1) cum
      in
      go 0 0
    end

  let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total
  let max_seen t = t.max_seen

  let to_json t =
    Json.Obj
      [
        ("count", Json.Int t.total);
        ("mean_s", Json.Float (mean t));
        ("p50_s", Json.Float (percentile t 0.50));
        ("p95_s", Json.Float (percentile t 0.95));
        ("p99_s", Json.Float (percentile t 0.99));
        ("max_s", Json.Float t.max_seen);
      ]
end

type t = {
  started_at : float;
  m : Mutex.t;
  requests : (string, int) Hashtbl.t;  (* per op tag *)
  mutable ok : int;
  errors : (string, int) Hashtbl.t;  (* per error-code tag *)
  mutable conns_accepted : int;
  mutable conns_dropped : int;
  mutable batches : int;
  mutable engine : Engine.summary;
  queue_wait : Hist.t;
  synth : Hist.t;
  total : Hist.t;
}

let create () =
  {
    started_at = Unix.gettimeofday ();
    m = Mutex.create ();
    requests = Hashtbl.create 8;
    ok = 0;
    errors = Hashtbl.create 8;
    conns_accepted = 0;
    conns_dropped = 0;
    batches = 0;
    engine = Engine.empty_summary;
    queue_wait = Hist.create ();
    synth = Hist.create ();
    total = Hist.create ();
  }

let uptime_s t = Unix.gettimeofday () -. t.started_at

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0)

let note_request t ~op = Mutex.protect t.m (fun () -> bump t.requests op)
let note_reply_ok t = Mutex.protect t.m (fun () -> t.ok <- t.ok + 1)

let note_reply_err t code =
  Mutex.protect t.m (fun () -> bump t.errors (Wire.code_tag code))

let note_conn_accepted t =
  Mutex.protect t.m (fun () -> t.conns_accepted <- t.conns_accepted + 1)

let note_conn_dropped t =
  Mutex.protect t.m (fun () -> t.conns_dropped <- t.conns_dropped + 1)

let shed_count t =
  Mutex.protect t.m (fun () ->
      let n tag = Option.value (Hashtbl.find_opt t.errors tag) ~default:0 in
      n "overloaded" + n "unavailable")

let note_batch t summary =
  Mutex.protect t.m (fun () ->
      t.batches <- t.batches + 1;
      t.engine <- Engine.add_summary t.engine summary)

let observe_queue_wait t x =
  Mutex.protect t.m (fun () -> Hist.observe t.queue_wait x)

let observe_synth t x = Mutex.protect t.m (fun () -> Hist.observe t.synth x)
let observe_total t x = Mutex.protect t.m (fun () -> Hist.observe t.total x)

let snapshot t ~shard ~queue_depth ~active_conns ~draining ~cache_entries =
  Mutex.protect t.m (fun () ->
      let tbl_json tbl =
        Json.Obj
          (List.sort compare
             (Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) tbl []))
      in
      Json.Obj
        [
          (* v5: embedded engine summary moved to mmsynth-stats-v4
             (restarts + imported_clauses) *)
          ("schema", Json.String "mmsynth-serve-stats-v5");
          ("shard", Json.String shard);
          ("protocol_version", Json.Int Wire.protocol_version);
          ("uptime_s", Json.Float (uptime_s t));
          ("draining", Json.Bool draining);
          ("queue_depth", Json.Int queue_depth);
          ( "connections",
            Json.Obj
              [
                ("accepted", Json.Int t.conns_accepted);
                ("active", Json.Int active_conns);
                ("dropped", Json.Int t.conns_dropped);
              ] );
          ("requests", tbl_json t.requests);
          ( "replies",
            Json.Obj
              (("ok", Json.Int t.ok)
               ::
               (match tbl_json t.errors with
                | Json.Obj kvs -> kvs
                | _ -> [])) );
          ("batches", Json.Int t.batches);
          ("engine", Engine.stats_to_json t.engine);
          ( "cache_entries",
            match cache_entries with None -> Json.Null | Some n -> Json.Int n );
          ( "latency",
            Json.Obj
              [
                ("queue_wait", Hist.to_json t.queue_wait);
                ("synth", Hist.to_json t.synth);
                ("total", Hist.to_json t.total);
              ] );
        ])
