module Json = Mm_report.Json
module Spec = Mm_boolfun.Spec
module Tt = Mm_boolfun.Truth_table

let protocol_version = 1
let max_frame = 8 * 1024 * 1024

type io_error = Closed | Too_large of int | Malformed of string

let pp_io_error = function
  | Closed -> "connection closed"
  | Too_large n -> Printf.sprintf "frame of %d bytes exceeds limit %d" n max_frame
  | Malformed msg -> Printf.sprintf "malformed frame: %s" msg

(* All Unix-level failures (EPIPE, ECONNRESET, EBADF, receive timeout...)
   collapse to [Closed]: the peer is gone as far as the protocol cares. *)
let really_write fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | 0 -> Error Closed
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> Error Closed
  in
  go 0

let really_read fd n =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Ok (Bytes.to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> Error Closed
      | r -> go (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> Error Closed
  in
  go 0

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then Error (Too_large n)
  else begin
    let hdr = Bytes.create 4 in
    Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
    Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
    Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set hdr 3 (Char.chr (n land 0xff));
    match really_write fd (Bytes.to_string hdr) with
    | Error _ as e -> e
    | Ok () -> really_write fd payload
  end

let read_frame fd =
  match really_read fd 4 with
  | Error _ as e -> e
  | Ok hdr ->
    let b i = Char.code hdr.[i] in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if n > max_frame then Error (Too_large n)
    else if n = 0 then Error (Malformed "empty payload")
    else really_read fd n

(* ---- typed messages -------------------------------------------------- *)

type synth_params = {
  timeout : float option;
  deadline : float option;
  fallback : string option;
}

let no_params = { timeout = None; deadline = None; fallback = None }

type request =
  | Synth of { spec : Spec.t; params : synth_params }
  | Stats
  | Health
  | Ping
  | Shutdown

type error_code =
  | Bad_request
  | Overloaded
  | Unavailable
  | Deadline_exceeded
  | Internal

let code_tag = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Unavailable -> "unavailable"
  | Deadline_exceeded -> "deadline_exceeded"
  | Internal -> "internal"

let code_of_tag = function
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "unavailable" -> Some Unavailable
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "internal" -> Some Internal
  | _ -> None

type error = { code : error_code; msg : string; retry_after_s : float option }

type reply = Result of Json.t | Err of error

let spec_to_json spec =
  Json.Obj
    [
      ("name", Json.String (Spec.name spec));
      ("arity", Json.Int (Spec.arity spec));
      ( "outputs",
        Json.List
          (Array.to_list
             (Array.map
                (fun tt -> Json.String (Tt.to_string tt))
                (Spec.outputs spec))) );
    ]

let spec_of_json j =
  match
    ( Json.get Json.to_int "arity" j,
      Json.get Json.to_list "outputs" j,
      Json.get Json.to_str "name" j )
  with
  | Some arity, Some outputs, name -> (
    if arity < 1 || arity > 16 then Error "arity out of range 1..16"
    else if outputs = [] then Error "no outputs"
    else
      let name = Option.value name ~default:"wire" in
      match
        List.map
          (fun o ->
            match Json.to_str o with
            | None -> invalid_arg "output is not a string"
            | Some s -> Tt.of_string arity s)
          outputs
      with
      | tts -> Ok (Spec.make ~name (Array.of_list tts))
      | exception Invalid_argument msg -> Error msg
      | exception Failure msg -> Error msg)
  | None, _, _ -> Error "spec: missing integer \"arity\""
  | _, None, _ -> Error "spec: missing \"outputs\" array"

let params_to_json p =
  Json.Obj
    (List.filter_map Fun.id
       [
         Option.map (fun t -> ("timeout", Json.Float t)) p.timeout;
         Option.map (fun d -> ("deadline", Json.Float d)) p.deadline;
         Option.map (fun f -> ("fallback", Json.String f)) p.fallback;
       ])

let params_of_json = function
  | None -> Ok no_params
  | Some j -> (
    match Json.bindings j with
    | None -> Error "params must be an object"
    | Some _ ->
      let fallback = Json.get Json.to_str "fallback" j in
      (match fallback with
       | Some ("none" | "baseline" | "heuristic") | None ->
         Ok
           {
             timeout = Json.get Json.to_float "timeout" j;
             deadline = Json.get Json.to_float "deadline" j;
             fallback;
           }
       | Some f ->
         Error
           (Printf.sprintf "unknown fallback %S (none|baseline|heuristic)" f)))

let request_to_json ~id req =
  let base op rest =
    Json.Obj
      ([ ("v", Json.Int protocol_version); ("id", Json.Int id);
         ("op", Json.String op) ]
      @ rest)
  in
  match req with
  | Synth { spec; params } ->
    base "synth"
      [ ("spec", spec_to_json spec); ("params", params_to_json params) ]
  | Stats -> base "stats" []
  | Health -> base "health" []
  | Ping -> base "ping" []
  | Shutdown -> base "shutdown" []

let request_of_json j =
  let id = Option.value (Json.get Json.to_int "id" j) ~default:0 in
  match Json.get Json.to_int "v" j with
  | Some v when v <> protocol_version ->
    Error
      (id, Printf.sprintf "protocol version %d unsupported (this daemon \
                           speaks version %d)" v protocol_version)
  | None -> Error (id, "missing integer \"v\" (protocol version)")
  | Some _ -> (
    match Json.get Json.to_str "op" j with
    | None -> Error (id, "missing \"op\"")
    | Some "stats" -> Ok (id, Stats)
    | Some "health" -> Ok (id, Health)
    | Some "ping" -> Ok (id, Ping)
    | Some "shutdown" -> Ok (id, Shutdown)
    | Some "synth" -> (
      match Json.member "spec" j with
      | None -> Error (id, "synth: missing \"spec\"")
      | Some sj -> (
        match spec_of_json sj with
        | Error msg -> Error (id, msg)
        | Ok spec -> (
          match params_of_json (Json.member "params" j) with
          | Error msg -> Error (id, msg)
          | Ok params -> Ok (id, Synth { spec; params }))))
    | Some op -> Error (id, Printf.sprintf "unknown op %S" op))

let ok_json ~id result =
  Json.Obj
    [
      ("v", Json.Int protocol_version);
      ("id", Json.Int id);
      ("ok", Json.Bool true);
      ("result", result);
    ]

let error_json ~id e =
  Json.Obj
    [
      ("v", Json.Int protocol_version);
      ("id", Json.Int id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          ([ ("code", Json.String (code_tag e.code));
             ("msg", Json.String e.msg) ]
          @
          match e.retry_after_s with
          | None -> []
          | Some s -> [ ("retry_after_s", Json.Float s) ]) );
    ]

let reply_of_json j =
  let id = Option.value (Json.get Json.to_int "id" j) ~default:0 in
  match Json.get Json.to_bool "ok" j with
  | Some true -> (
    match Json.member "result" j with
    | Some r -> Ok (id, Result r)
    | None -> Error "ok response without \"result\"")
  | Some false -> (
    match Json.member "error" j with
    | None -> Error "error response without \"error\""
    | Some e -> (
      let msg = Option.value (Json.get Json.to_str "msg" e) ~default:"" in
      let retry_after_s = Json.get Json.to_float "retry_after_s" e in
      match Option.bind (Json.get Json.to_str "code" e) code_of_tag with
      | None -> Error "error response with unknown code"
      | Some code -> Ok (id, Err { code; msg; retry_after_s })))
  | None -> Error "response without boolean \"ok\""
