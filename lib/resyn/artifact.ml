module Circuit = Mm_core.Circuit
module Emit = Mm_core.Emit
module Rop = Mm_core.Rop
module Literal = Mm_boolfun.Literal
module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Json = Mm_report.Json

let circuit_to_json (c : Circuit.t) : Json.t =
  match Json.of_string (Emit.to_json c) with
  | Ok j -> j
  | Error msg -> failwith ("Artifact.circuit_to_json: " ^ msg)

let ( let* ) r f = Result.bind r f

let field conv name j =
  match Json.get conv name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "artifact: missing or malformed %S" name)

let literal_of_string s =
  match s with
  | "const-0" -> Ok Literal.Const0
  | "const-1" -> Ok Literal.Const1
  | _ ->
    let neg = String.length s > 0 && s.[0] = '~' in
    let body = if neg then String.sub s 1 (String.length s - 1) else s in
    if String.length body >= 2 && body.[0] = 'x' then
      match int_of_string_opt (String.sub body 1 (String.length body - 1)) with
      | Some i when i >= 1 ->
        Ok (if neg then Literal.Neg i else Literal.Pos i)
      | _ -> Error (Printf.sprintf "artifact: bad literal %S" s)
    else Error (Printf.sprintf "artifact: bad literal %S" s)

let source_of_json j =
  let* kind = field Json.to_str "kind" j in
  match kind with
  | "literal" ->
    let* name = field Json.to_str "name" j in
    let* l = literal_of_string name in
    Ok (Circuit.From_literal l)
  | "leg" ->
    let* i = field Json.to_int "index" j in
    Ok (Circuit.From_leg i)
  | "vop" ->
    let* l = field Json.to_int "leg" j in
    let* s = field Json.to_int "step" j in
    Ok (Circuit.From_vop (l, s))
  | "rop" ->
    let* i = field Json.to_int "index" j in
    Ok (Circuit.From_rop i)
  | k -> Error (Printf.sprintf "artifact: unknown source kind %S" k)

let rec map_m f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_m f xs in
    Ok (y :: ys)

let circuit_of_json (j : Json.t) : (Circuit.t, string) result =
  let* arity = field Json.to_int "arity" j in
  let* kind_s = field Json.to_str "rop_kind" j in
  let* rop_kind =
    match kind_s with
    | "NOR" -> Ok Rop.Nor
    | "NIMP" -> Ok Rop.Nimp
    | k -> Error (Printf.sprintf "artifact: unknown rop_kind %S" k)
  in
  let* legs_j = field Json.to_list "legs" j in
  let* legs =
    map_m
      (fun leg_j ->
        match Json.to_list leg_j with
        | None -> Error "artifact: leg is not a list"
        | Some ops ->
          let* vops =
            map_m
              (fun op ->
                let* te_s = field Json.to_str "te" op in
                let* be_s = field Json.to_str "be" op in
                let* te = literal_of_string te_s in
                let* be = literal_of_string be_s in
                Ok { Circuit.te; be })
              ops
          in
          Ok (Array.of_list vops))
      legs_j
  in
  let* rops_j = field Json.to_list "rops" j in
  let* rops =
    map_m
      (fun r ->
        let* in1 =
          match Json.member "in1" r with
          | Some s -> source_of_json s
          | None -> Error "artifact: rop missing in1"
        in
        let* in2 =
          match Json.member "in2" r with
          | Some s -> source_of_json s
          | None -> Error "artifact: rop missing in2"
        in
        Ok { Circuit.in1; in2 })
      rops_j
  in
  let* outputs_j = field Json.to_list "outputs" j in
  let* outputs = map_m source_of_json outputs_j in
  match
    Circuit.make ~arity ~rop_kind
      ~legs:(Array.of_list legs)
      ~rops:(Array.of_list rops)
      ~outputs:(Array.of_list outputs) ()
  with
  | c -> Ok c
  | exception Invalid_argument msg -> Error ("artifact: invalid circuit: " ^ msg)

let spec_to_json (spec : Spec.t) : Json.t =
  Json.Obj
    [
      ("name", Json.String (Spec.name spec));
      ("arity", Json.Int (Spec.arity spec));
      ( "tables",
        Json.List
          (Array.to_list
             (Array.map (fun tt -> Json.String (Tt.to_string tt))
                (Spec.outputs spec))) );
    ]

let spec_of_json (j : Json.t) : (Spec.t, string) result =
  let* name = field Json.to_str "name" j in
  let* arity = field Json.to_int "arity" j in
  let* tables_j = field Json.to_list "tables" j in
  let* tables =
    map_m
      (fun t ->
        match Json.to_str t with
        | None -> Error "artifact: table is not a string"
        | Some s -> (
          match Tt.of_string arity s with
          | tt -> Ok tt
          | exception Invalid_argument msg ->
            Error ("artifact: bad table: " ^ msg)
          | exception Failure msg -> Error ("artifact: bad table: " ^ msg)))
      tables_j
  in
  if tables = [] then Error "artifact: spec has no tables"
  else Ok (Spec.make ~name (Array.of_list tables))
