(** Window replacement: probe, price, splice, verify.

    {!attempt} extracts a window's function, asks the engine for an exact
    0-leg replacement under the window's R-op budget (strictly fewer ops
    than the span it replaces, counting any inverters the splice must
    materialize for negated live-ins), and rebuilds the circuit with the
    replacement segment in place of the span. Constant and single-wire
    windows splice without touching the solver at all.

    Splices reuse structure instead of duplicating it: a negated live-in is
    served by literal-polarity flipping when the live-in is a primary
    input, by an existing NOR(s,s) inverter defined before the window when
    one exists, and only otherwise by a fresh inverter (which is then
    memoized for the rest of the same splice).

    The returned circuit is structurally validated ({!Mm_core.Circuit.make})
    but {e not} yet checked against the full specification — the driver
    re-verifies every accepted splice with [Circuit.realizes] before
    committing it, so a rewrite bug surfaces as a rejected splice, never as
    a wrong circuit. *)

module Circuit = Mm_core.Circuit
module Tt = Mm_boolfun.Truth_table
module Engine = Mm_engine.Engine

(** How the replacement was obtained (provenance, kept per splice). *)
type origin =
  | Trivial  (** constant / wire / negated-wire window, no probe *)
  | Atlas  (** exact class served by the atlas tier, zero solver calls *)
  | Solver  (** SAT pipeline (cache hits included) *)

type candidate = {
  window : Window.t;
  fn : Extract.fn;
  old_rops : int;  (** window width replaced *)
  new_rops : int;  (** replacement segment length, fresh inverters included *)
  origin : origin;
  exact : bool;
  optimal : bool;  (** minimality proof completed within the probe budget *)
  class_rep : Tt.t option;  (** NPN representative, when the probe ran *)
}

(** Replacement segment shape handed to {!splice}. *)
type repl =
  | R_const of bool
  | R_wire of bool  (** [live_in.(0)], negated when [true] *)
  | R_circuit of Circuit.t  (** 0-leg block over the live-ins *)

(** [splice c w live_in repl] is the rebuilt circuit and the replacement
    segment length. The prefix before [w.lo] is untouched, the span is
    replaced by the translated segment, and every suffix/output reference
    is index-shifted, with reads of the live-out redirected to the
    replacement output. *)
val splice : Circuit.t -> Window.t -> Circuit.source array -> repl -> Circuit.t * int

(** [attempt ~probe c w] is [Some (c', cand)] when a strictly-cheaper
    replacement exists, [None] otherwise. [probe] is the (memoized)
    window-shaped engine entry — see {!Mm_engine.Engine.probe_window}. *)
val attempt :
  probe:(budget_rops:int -> Tt.t -> Engine.probe option) ->
  Circuit.t ->
  Window.t ->
  (Circuit.t * candidate) option
