module Circuit = Mm_core.Circuit
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Rop = Mm_core.Rop

type fn = {
  tt : Tt.t;
  live_in : Circuit.source array;
}

let table (c : Circuit.t) (w : Window.t) : fn =
  let m = Array.length w.Window.live_in in
  let idx = Hashtbl.create 8 in
  Array.iteri (fun i s -> Hashtbl.replace idx s i) w.Window.live_in;
  let members = w.Window.members in
  let local = Hashtbl.create 8 in
  Array.iteri (fun j r -> Hashtbl.replace local r j) members;
  let kind = c.Circuit.rop_kind in
  let raw =
    Tt.of_fun m (fun q ->
        let live i = Tt.input_bit m q (i + 1) in
        let vals = Array.make (Array.length members) false in
        let value (s : Circuit.source) =
          match s with
          | Circuit.From_literal Literal.Const0 -> false
          | Circuit.From_literal Literal.Const1 -> true
          | Circuit.From_literal (Literal.Neg i) ->
            not (live (Hashtbl.find idx (Circuit.From_literal (Literal.Pos i))))
          | Circuit.From_rop r when Hashtbl.mem local r ->
            vals.(Hashtbl.find local r)
          | s -> live (Hashtbl.find idx s)
        in
        (* members are ascending and only reference earlier R-ops, so one
           left-to-right pass is a topological replay *)
        Array.iteri
          (fun j r ->
            let { Circuit.in1; in2 } = c.Circuit.rops.(r) in
            vals.(j) <- Rop.eval kind (value in1) (value in2))
          members;
        vals.(Array.length members - 1))
  in
  match Tt.support raw with
  | [] -> { tt = Tt.const 1 (Tt.eval raw 0); live_in = [||] }
  | sup ->
    { tt = Tt.project raw sup;
      live_in = Array.of_list (List.map (fun v -> w.Window.live_in.(v - 1)) sup) }
