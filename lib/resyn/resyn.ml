module Circuit = Mm_core.Circuit
module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Literal = Mm_boolfun.Literal
module Engine = Mm_engine.Engine
module Stitch = Mm_map.Stitch
module Xstitch = Mm_map.Xstitch
module Mapper = Mm_map.Mapper
module Blocklib = Mm_map.Blocklib
module Cut = Mm_map.Cut
module Aig = Mm_map.Aig

(* ------------------------------------------------------------------ *)
(* Cleanup sweeps                                                      *)
(* ------------------------------------------------------------------ *)

let sweep_merge (c : Circuit.t) =
  let n = c.Circuit.arity in
  let n_r = Circuit.n_rops c in
  if n > 14 || n_r = 0 then (c, 0)
  else begin
    (* available signals by global function; first definition wins so every
       redirect points strictly backwards *)
    let map = Hashtbl.create (4 * n_r) in
    let remember tt s =
      let k = Tt.to_string tt in
      if not (Hashtbl.mem map k) then Hashtbl.add map k s
    in
    List.iter
      (fun l -> remember (Literal.table n l) (Circuit.From_literal l))
      (Literal.all n);
    Array.iteri
      (fun l ops ->
        if Array.length ops > 0 then
          remember
            (Circuit.leg_value c ~leg:l ~step:(Array.length ops - 1))
            (Circuit.From_leg l))
      c.Circuit.legs;
    let subst = Array.make n_r None in
    let resolve (s : Circuit.source) =
      match s with
      | Circuit.From_rop r -> (
        match subst.(r) with Some s' -> s' | None -> s)
      | s -> s
    in
    let merged = ref 0 in
    let rops' = Array.make n_r c.Circuit.rops.(0) in
    for i = 0 to n_r - 1 do
      let r = c.Circuit.rops.(i) in
      rops'.(i) <-
        { Circuit.in1 = resolve r.Circuit.in1; in2 = resolve r.Circuit.in2 };
      let tt = Circuit.rop_value c i in
      let k = Tt.to_string tt in
      match Hashtbl.find_opt map k with
      | Some s ->
        subst.(i) <- Some s;
        incr merged
      | None -> Hashtbl.add map k (Circuit.From_rop i)
    done;
    if !merged = 0 then (c, 0)
    else
      let outputs = Array.map resolve c.Circuit.outputs in
      ( Circuit.make ~arity:n ~rop_kind:c.Circuit.rop_kind ~legs:c.Circuit.legs
          ~rops:rops' ~outputs (),
        !merged )
  end

let dce (c : Circuit.t) =
  let n_r = Circuit.n_rops c in
  if n_r = 0 then (c, 0)
  else begin
    let live = Array.make n_r false in
    let rec mark (s : Circuit.source) =
      match s with
      | Circuit.From_rop r ->
        if not live.(r) then begin
          live.(r) <- true;
          mark c.Circuit.rops.(r).Circuit.in1;
          mark c.Circuit.rops.(r).Circuit.in2
        end
      | _ -> ()
    in
    Array.iter mark c.Circuit.outputs;
    let dead = ref 0 in
    Array.iter (fun b -> if not b then incr dead) live;
    if !dead = 0 then (c, 0)
    else begin
      let remap = Array.make n_r (-1) in
      let next = ref 0 in
      for i = 0 to n_r - 1 do
        if live.(i) then begin
          remap.(i) <- !next;
          incr next
        end
      done;
      let shift (s : Circuit.source) =
        match s with
        | Circuit.From_rop r -> Circuit.From_rop remap.(r)
        | s -> s
      in
      let rops' = Array.make !next c.Circuit.rops.(0) in
      for i = 0 to n_r - 1 do
        if live.(i) then
          let r = c.Circuit.rops.(i) in
          rops'.(remap.(i)) <-
            { Circuit.in1 = shift r.Circuit.in1; in2 = shift r.Circuit.in2 }
      done;
      let outputs = Array.map shift c.Circuit.outputs in
      ( Circuit.make ~arity:c.Circuit.arity ~rop_kind:c.Circuit.rop_kind
          ~legs:c.Circuit.legs ~rops:rops' ~outputs (),
        !dead )
    end
  end

(* Leg compaction under the shared-BE-rail constraint.

   A V-op with TE = BE is a hold (Table I): it never changes the leg's
   accumulated state. The stitcher serializes independent blocks in time,
   padding every other leg with holds over each block's span — but the
   only physical coupling between legs is the shared BE rail (all legs see
   the same BE literal at each step; a leg not scheduled at a step simply
   holds with TE = BE = rail). So the minimum-length legal schedule is the
   shortest rail string that contains every leg's BE sequence (its real,
   non-hold ops, in order) as a subsequence: a shortest common
   supersequence. We solve it exactly by BFS over position vectors when
   the (deduplicated, domination-pruned) state space is small, otherwise
   with the majority-merge greedy; each leg then embeds by earliest match
   and holds elsewhere. Mid-leg taps follow their op to its new step. *)

let scs_state_cap = 2_000_000

(* earliest-match test: is [a] a subsequence of [b]? *)
let subseq (a : Literal.t array) (b : Literal.t array) =
  let j = ref 0 in
  Array.iter (fun x -> if !j < Array.length a && a.(!j) = x then incr j) b;
  !j = Array.length a

(* majority-merge greedy: repeatedly emit the literal wanted next by the
   most sequences (ties: the one whose backlog is longest, then leftmost) *)
let scs_greedy (seqs : Literal.t array array) : Literal.t list =
  let m = Array.length seqs in
  let pos = Array.make m 0 in
  let rail = ref [] in
  let live () = Array.exists (fun i -> i >= 0) (Array.mapi
      (fun l p -> if p < Array.length seqs.(l) then 0 else -1) pos)
  in
  while live () do
    let score = Hashtbl.create 8 in
    Array.iteri
      (fun l p ->
        if p < Array.length seqs.(l) then begin
          let lit = seqs.(l).(p) in
          let cnt, backlog =
            Option.value ~default:(0, 0) (Hashtbl.find_opt score lit)
          in
          Hashtbl.replace score lit
            (cnt + 1, max backlog (Array.length seqs.(l) - p))
        end)
      pos;
    let best = ref None in
    Hashtbl.iter
      (fun lit (cnt, backlog) ->
        match !best with
        | Some (_, bc, bb) when (cnt, backlog) <= (bc, bb) -> ()
        | _ -> best := Some (lit, cnt, backlog))
      score;
    match !best with
    | None -> ()
    | Some (lit, _, _) ->
      rail := lit :: !rail;
      Array.iteri
        (fun l p ->
          if p < Array.length seqs.(l) && seqs.(l).(p) = lit then
            pos.(l) <- p + 1)
        pos
  done;
  List.rev !rail

(* exact SCS: BFS over position vectors (all edges cost 1). Returns None
   when the product state space exceeds the cap. *)
let scs_exact (seqs : Literal.t array array) : Literal.t list option =
  let m = Array.length seqs in
  let strides = Array.make m 1 in
  let total = ref 1 and overflow = ref false in
  for l = 0 to m - 1 do
    strides.(l) <- !total;
    let w = Array.length seqs.(l) + 1 in
    if !total > scs_state_cap / w then overflow := true
    else total := !total * w
  done;
  if !overflow then None
  else begin
    let n_states = !total in
    let goal = n_states - 1 in
    let prev = Array.make n_states (-1) in
    let via = Array.make n_states Literal.Const0 in
    let q = Queue.create () in
    Queue.add 0 q;
    prev.(0) <- 0;
    let found = ref (goal = 0) in
    while (not !found) && not (Queue.is_empty q) do
      let s = Queue.pop q in
      let pos = Array.init m (fun l -> s / strides.(l) mod (Array.length seqs.(l) + 1)) in
      (* candidate next literals = the distinct heads *)
      let heads = Hashtbl.create 8 in
      Array.iteri
        (fun l p ->
          if p < Array.length seqs.(l) then
            Hashtbl.replace heads seqs.(l).(p) ())
        pos;
      Hashtbl.iter
        (fun lit () ->
          let s' = ref s in
          Array.iteri
            (fun l p ->
              if p < Array.length seqs.(l) && seqs.(l).(p) = lit then
                s' := !s' + strides.(l))
            pos;
          if prev.(!s') < 0 then begin
            prev.(!s') <- s;
            via.(!s') <- lit;
            if !s' = goal then found := true else Queue.add !s' q
          end)
        heads
    done;
    if not !found then None (* unreachable only when m = 0 handled above *)
    else begin
      let rail = ref [] in
      let s = ref goal in
      while !s <> 0 do
        rail := via.(!s) :: !rail;
        s := prev.(!s)
      done;
      Some !rail
    end
  end

let compact_legs (c : Circuit.t) =
  let legs = c.Circuit.legs in
  let n_legs = Array.length legs in
  if n_legs = 0 then (c, 0)
  else begin
    let old_len = Array.length legs.(0) in
    (* real (non-hold) ops per leg, with their original step indices *)
    let real =
      Array.map
        (fun ops ->
          let acc = ref [] in
          Array.iteri
            (fun s (op : Circuit.vop) ->
              if op.Circuit.te <> op.Circuit.be then acc := (s, op) :: !acc)
            ops;
          Array.of_list (List.rev !acc))
        legs
    in
    let be_seq =
      Array.map (Array.map (fun (_, op) -> op.Circuit.be)) real
    in
    (* rail = SCS over distinct, non-dominated BE sequences: a sequence
       that is a subsequence of another is satisfied by any rail
       satisfying the dominating one *)
    let distinct =
      Array.to_list be_seq
      |> List.filter (fun s -> Array.length s > 0)
      |> List.sort_uniq compare
    in
    let kept =
      List.filter
        (fun s ->
          not
            (List.exists (fun t -> t <> s && subseq s t) distinct))
        distinct
    in
    let seqs = Array.of_list kept in
    let rail =
      if Array.length seqs = 0 then []
      else
        match scs_exact seqs with
        | Some r -> r
        | None -> scs_greedy seqs
    in
    let new_len = List.length rail in
    if new_len >= old_len then (c, 0)
    else begin
      let rail = Array.of_list rail in
      (* embed every leg by earliest match; record each op's new step *)
      let hold lit = { Circuit.te = lit; be = lit } in
      let placed = Array.map (fun r -> Array.make (Array.length r) (-1)) real in
      let legs' =
        Array.mapi
          (fun l r ->
            let out = Array.init new_len (fun t -> hold rail.(t)) in
            let j = ref 0 in
            Array.iteri
              (fun t lit ->
                if !j < Array.length r then begin
                  let _, op = r.(!j) in
                  if op.Circuit.be = lit then begin
                    out.(t) <- op;
                    placed.(l).(!j) <- t;
                    incr j
                  end
                end)
              rail;
            if !j < Array.length r then
              (* cannot happen: every BE sequence is a subsequence of the
                 rail by construction *)
              invalid_arg "Resyn.compact_legs: leg failed to embed";
            out)
          real
      in
      (* original step s on leg l -> index of last real op at or before s *)
      let op_upto =
        Array.mapi
          (fun l ops ->
            let pos = Array.make (Array.length ops) (-1) in
            let k = ref (-1) in
            let next = ref 0 in
            Array.iteri
              (fun s _ ->
                if
                  !next < Array.length real.(l)
                  && fst real.(l).(!next) = s
                then begin
                  k := !next;
                  incr next
                end;
                pos.(s) <- !k)
              ops;
            pos)
          legs
      in
      let conv (s : Circuit.source) =
        match s with
        | Circuit.From_vop (l, st) ->
          let k = op_upto.(l).(st) in
          if k < 0 then Circuit.From_literal Literal.Const0
          else Circuit.From_vop (l, placed.(l).(k))
        | s -> s
      in
      let rops =
        Array.map
          (fun (r : Circuit.rop) ->
            { Circuit.in1 = conv r.Circuit.in1; in2 = conv r.Circuit.in2 })
          c.Circuit.rops
      in
      let outputs = Array.map conv c.Circuit.outputs in
      ( Circuit.make ~arity:c.Circuit.arity ~rop_kind:c.Circuit.rop_kind
          ~legs:legs' ~rops ~outputs (),
        old_len - new_len )
    end
  end

(* ------------------------------------------------------------------ *)
(* 1D driver                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  passes : int;
  fixed_point : bool;
  windows_attempted : int;
  windows_accepted : int;
  trivial_hits : int;
  atlas_hits : int;
  solver_hits : int;
  probe_calls : int;
  rejected : int;
  sweep_merged : int;
  dce_removed : int;
  v_steps_saved : int;
  steps_before : int;
  steps_after : int;
  wall_s : float;
}

type t = {
  circuit : Circuit.t;
  splices : Rewrite.candidate list;
  stats : stats;
}

let optimize ?(max_width = 6) ?(max_live = 6) ?(max_passes = 4)
    (cfg : Engine.config) (spec : Spec.t) (circuit0 : Circuit.t) : t =
  (match Circuit.realizes circuit0 spec with
  | Ok () -> ()
  | Error row ->
    invalid_arg
      (Printf.sprintf "Resyn.optimize: input circuit wrong on row %d" row));
  let t0 = Unix.gettimeofday () in
  let steps_before = Circuit.n_steps circuit0 in
  let memo : (string * int, Engine.probe option) Hashtbl.t =
    Hashtbl.create 64
  in
  let probe_calls = ref 0 in
  let probe ~budget_rops tt =
    let key = (Tt.to_string tt, budget_rops) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
      incr probe_calls;
      let r = Engine.probe_window cfg ~budget_rops tt in
      Hashtbl.add memo key r;
      r
  in
  let attempted = ref 0
  and accepted = ref 0
  and trivial = ref 0
  and atlas = ref 0
  and solver = ref 0
  and rejected = ref 0
  and merged_total = ref 0
  and dced_total = ref 0
  and v_saved_total = ref 0 in
  let splices = ref [] in
  let circuit = ref circuit0 in
  let cleanup () =
    let c, m = sweep_merge !circuit in
    let c, d = dce c in
    let c, v = compact_legs c in
    merged_total := !merged_total + m;
    dced_total := !dced_total + d;
    v_saved_total := !v_saved_total + v;
    if m + d + v > 0 then
      (* redirects point backwards and dead-code removal only drops
         unreachable ops, so this cannot fire; zero-trust anyway *)
      match Circuit.realizes c spec with
      | Ok () -> circuit := c
      | Error _ -> incr rejected
  in
  let record (cand : Rewrite.candidate) =
    splices := cand :: !splices;
    incr accepted;
    match cand.Rewrite.origin with
    | Rewrite.Trivial -> incr trivial
    | Rewrite.Atlas -> incr atlas
    | Rewrite.Solver -> incr solver
  in
  (* One sweep: scan all windows (widest first — biggest budgets give the
     solver the most room), splice the first acceptable rewrite, then
     re-enumerate on the rewritten circuit and repeat. Every acceptance
     strictly decreases the R-op count, so the loop terminates; probe
     memoization keeps re-scanned windows cheap. *)
  let sweep () =
    let accepted_here = ref 0 in
    let continue_scan = ref true in
    while !continue_scan do
      let ws =
        Window.enumerate ~max_width ~max_live !circuit
        |> List.sort (fun a b ->
               if Window.width a <> Window.width b then
                 compare (Window.width b) (Window.width a)
               else compare a.Window.live_out b.Window.live_out)
      in
      let rec scan = function
        | [] -> continue_scan := false
        | w :: rest -> (
          incr attempted;
          match Rewrite.attempt ~probe !circuit w with
          | None -> scan rest
          | Some (c', cand) -> (
            match Circuit.realizes c' spec with
            | Ok () ->
              circuit := c';
              record cand;
              incr accepted_here
            | Error _ ->
              incr rejected;
              scan rest))
      in
      scan ws
    done;
    !accepted_here
  in
  let passes = ref 0 in
  let fixed_point = ref false in
  (try
     while !passes < max_passes && not !fixed_point do
       incr passes;
       let m0 = !merged_total + !dced_total + !v_saved_total in
       cleanup ();
       let got = sweep () in
       if got = 0 && !merged_total + !dced_total + !v_saved_total = m0 then
         fixed_point := true
     done
   with e -> raise e);
  cleanup ();
  let steps_after = Circuit.n_steps !circuit in
  (match Circuit.realizes !circuit spec with
  | Ok () -> ()
  | Error row ->
    failwith (Printf.sprintf "Resyn.optimize: result wrong on row %d" row));
  {
    circuit = !circuit;
    splices = List.rev !splices;
    stats =
      {
        passes = !passes;
        fixed_point = !fixed_point;
        windows_attempted = !attempted;
        windows_accepted = !accepted;
        trivial_hits = !trivial;
        atlas_hits = !atlas;
        solver_hits = !solver;
        probe_calls = !probe_calls;
        rejected = !rejected;
        sweep_merged = !merged_total;
        dce_removed = !dced_total;
        v_steps_saved = !v_saved_total;
        steps_before;
        steps_after;
        wall_s = Unix.gettimeofday () -. t0;
      };
  }

(* ------------------------------------------------------------------ *)
(* Crossbar driver (cover level)                                       *)
(* ------------------------------------------------------------------ *)

type xstats = {
  xpasses : int;
  merges_attempted : int;
  merges_accepted : int;
  rebuilds_rejected : int;
  cycles_before : int;
  cycles_after : int;
  xwall_s : float;
}

type xresult = {
  result : Xstitch.result;
  xstats : xstats;
}

type merge_candidate = {
  consumer : int;  (* index into the blocks array *)
  producer : int;
  mblock : Mapper.block;  (* the merged replacement *)
  gain : float;
}

(* Merge candidates over one cover: absorb a producer block consumed by
   exactly one other block (and not feeding an output) into its consumer,
   when the composed function fits the ≤4-support library universe. *)
let merge_candidates ~v_weight (lib : Blocklib.t) (m : Mapper.mapping) :
    int * merge_candidate list =
  let aig = m.Mapper.aig in
  let n_in = Aig.n_inputs aig in
  let blocks = Array.of_list m.Mapper.blocks in
  let idx_of_root = Hashtbl.create 32 in
  Array.iteri
    (fun i (b : Mapper.block) -> Hashtbl.replace idx_of_root b.Mapper.root i)
    blocks;
  let consumers = Hashtbl.create 32 in
  Array.iter
    (fun (b : Mapper.block) ->
      Array.iter
        (fun l ->
          Hashtbl.replace consumers l
            (1 + Option.value ~default:0 (Hashtbl.find_opt consumers l)))
        b.Mapper.cut.Cut.leaves)
    blocks;
  let out_nodes = Hashtbl.create 8 in
  Array.iter
    (fun lit -> Hashtbl.replace out_nodes (Aig.lit_node lit) ())
    (Aig.outputs aig);
  let cost (e : Blocklib.entry) =
    (v_weight *. float_of_int e.Blocklib.steps) +. float_of_int e.Blocklib.rops
  in
  let attempted = ref 0 in
  let cands = ref [] in
  Array.iteri
    (fun bi (b : Mapper.block) ->
      Array.iter
        (fun l ->
          if l > n_in then
            match Hashtbl.find_opt idx_of_root l with
            | None -> ()
            | Some pi ->
              let p = blocks.(pi) in
              if
                Hashtbl.find_opt consumers l = Some 1
                && not (Hashtbl.mem out_nodes l)
              then begin
                incr attempted;
                let ext =
                  Array.to_list b.Mapper.cut.Cut.leaves
                  |> List.filter (fun x -> x <> l)
                  |> List.append (Array.to_list p.Mapper.cut.Cut.leaves)
                  |> List.sort_uniq compare
                in
                if List.length ext <= 6 then begin
                  let ext_a = Array.of_list ext in
                  let me = Array.length ext_a in
                  let pos = Hashtbl.create 8 in
                  Array.iteri (fun i x -> Hashtbl.replace pos x i) ext_a;
                  let eval_block (blk : Mapper.block) extra q =
                    let bits =
                      Array.map
                        (fun leaf ->
                          match extra leaf with
                          | Some v -> v
                          | None ->
                            Tt.input_bit me q (Hashtbl.find pos leaf + 1))
                        blk.Mapper.cut.Cut.leaves
                    in
                    let row = ref 0 in
                    let k = Array.length bits in
                    Array.iteri
                      (fun i v -> if v then row := !row lor (1 lsl (k - 1 - i)))
                      bits;
                    Tt.eval blk.Mapper.cut.Cut.tt !row
                  in
                  let raw =
                    Tt.of_fun me (fun q ->
                        let pv = eval_block p (fun _ -> None) q in
                        eval_block b
                          (fun leaf -> if leaf = l then Some pv else None)
                          q)
                  in
                  let sup = Tt.support raw in
                  let nsup = List.length sup in
                  if nsup >= 1 && nsup <= 4 then begin
                    let tt = Tt.project raw sup in
                    let leaves =
                      Array.of_list (List.map (fun v -> ext_a.(v - 1)) sup)
                    in
                    let kind =
                      if Array.for_all (fun x -> x <= n_in) leaves then
                        Blocklib.Mixed
                      else Blocklib.R_only
                    in
                    let entry = Blocklib.lookup lib kind tt in
                    let gain =
                      cost b.Mapper.entry +. cost p.Mapper.entry -. cost entry
                    in
                    if gain > 0.0 then
                      cands :=
                        {
                          consumer = bi;
                          producer = pi;
                          mblock =
                            {
                              Mapper.root = b.Mapper.root;
                              cut = { Cut.leaves; tt };
                              entry;
                            };
                          gain;
                        }
                        :: !cands
                  end
                end
              end)
        b.Mapper.cut.Cut.leaves)
    blocks;
  (!attempted, List.sort (fun a b -> compare b.gain a.gain) !cands)

let apply_merges (m : Mapper.mapping) (picked : merge_candidate list) :
    Mapper.mapping =
  let blocks = Array.of_list m.Mapper.blocks in
  let drop = Hashtbl.create 8 in
  List.iter
    (fun c ->
      blocks.(c.consumer) <- c.mblock;
      Hashtbl.replace drop c.producer ())
    picked;
  let blocks' =
    Array.to_list blocks
    |> List.filteri (fun i _ -> not (Hashtbl.mem drop i))
    |> List.sort (fun (a : Mapper.block) b -> compare a.Mapper.root b.Mapper.root)
  in
  { m with Mapper.blocks = blocks' }

let optimize_xbar ?(max_passes = 4) ?(rows = 16) ?(ports = 4) ?(polish = true)
    ?(v_weight = 2.0) (cfg : Engine.config) (spec : Spec.t)
    (r0 : Xstitch.result) : xresult =
  let t0 = Unix.gettimeofday () in
  let lib = Blocklib.create cfg in
  let attempted = ref 0
  and accepted = ref 0
  and rejects = ref 0 in
  let best = ref r0 in
  let passes = ref 0 in
  let continue_loop = ref true in
  while !continue_loop && !passes < max_passes do
    incr passes;
    let mapping = !best.Xstitch.stitch.Stitch.mapping in
    let att, cands = merge_candidates ~v_weight lib mapping in
    attempted := !attempted + att;
    (* greedy disjoint pick by gain *)
    let used = Hashtbl.create 8 in
    let picked =
      List.filter
        (fun c ->
          if Hashtbl.mem used c.consumer || Hashtbl.mem used c.producer then
            false
          else begin
            Hashtbl.replace used c.consumer ();
            Hashtbl.replace used c.producer ();
            true
          end)
        cands
    in
    let try_rebuild picked =
      if picked = [] then None
      else
        match
          let mapping' = apply_merges mapping picked in
          let stitched' = Stitch.lower spec mapping' in
          let stitch' =
            {
              !best.Xstitch.stitch with
              Stitch.stitched = stitched';
              mapping = mapping';
              dag = Mapper.dag mapping';
            }
          in
          Xstitch.of_stitch ~rows ~ports ~polish stitch' spec
        with
        | r'
          when r'.Xstitch.verified && r'.Xstitch.cycles < !best.Xstitch.cycles
          ->
          Some (r', List.length picked)
        | _ -> None
        | exception _ -> None
    in
    match try_rebuild picked with
    | Some (r', n) ->
      best := r';
      accepted := !accepted + n
    | None -> (
      if picked <> [] then incr rejects;
      (* the batch failed or did not improve; try just the best merge *)
      match
        match picked with [] -> None | best_one :: _ -> try_rebuild [ best_one ]
      with
      | Some (r', n) ->
        best := r';
        accepted := !accepted + n
      | None ->
        if List.length picked > 1 then incr rejects;
        continue_loop := false)
  done;
  {
    result = !best;
    xstats =
      {
        xpasses = !passes;
        merges_attempted = !attempted;
        merges_accepted = !accepted;
        rebuilds_rejected = !rejects;
        cycles_before = r0.Xstitch.cycles;
        cycles_after = !best.Xstitch.cycles;
        xwall_s = Unix.gettimeofday () -. t0;
      };
  }
