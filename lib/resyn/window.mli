(** Legal resynthesis windows over a stitched R-op schedule.

    A window is a {e fanout-free} set of R-ops ending at a single
    {e live-out}: every member other than the live-out is consumed only by
    other members, so the set computes exactly one Boolean function of its
    {e live-ins} — the distinct signals it reads that are defined outside
    it (primary-input literals, with both polarities of [x_i] collapsing
    onto one live-in; V-leg taps; earlier R-ops). {!Extract} tabulates
    that function and {!Rewrite} re-synthesizes it under the window's own
    budget.

    Two families are enumerated:
    + {b contiguous spans} [\[lo, hi)] with a single live-out — the
      sliding window over the schedule. Every such span is fanout-free
      with live-out [hi - 1] (a trailing op consumed nowhere would be dead
      code, which the cleanup sweeps remove first);
    + {b maximum fanout-free cones} of each R-op — the members need not be
      adjacent in the schedule, which is what lets an output inverter
      NOR(x,x) fold into the (possibly distant) block producing [x] as a
      complemented re-synthesis.

    Since R-ops only reference strictly earlier R-ops, every member is an
    ancestor of the live-out and every live-in is defined before it, so a
    replacement segment spliced at the live-out's position sees all of
    them. Constants are not live-ins (they cannot vary). *)

module Circuit = Mm_core.Circuit

type t = {
  members : int array;  (** R-op indices, ascending; the last is the live-out *)
  live_in : Circuit.source array;
      (** distinct external signals, first-use order; negated-literal reads
          are canonicalized onto the positive literal *)
  live_out : int;  (** [= members.(length - 1)] *)
}

val width : t -> int
(** Number of member R-ops (the window's R-op budget is [width - 1]). *)

val lo : t -> int
(** Smallest member index — where the replacement segment begins. *)

(** Canonical live-in key of a source: [Neg i] reads collapse onto [Pos i]
    (one underlying signal), everything else is itself. *)
val source_key : Circuit.source -> Circuit.source

(** All legal windows of [2 .. max_width] members with [1 .. max_live]
    live-ins: every single-live-out contiguous span plus every capped
    fanout-free cone not already enumerated as a span. Ordered by
    live-out ascending, then width ascending. *)
val enumerate : ?max_width:int -> ?max_live:int -> Circuit.t -> t list
