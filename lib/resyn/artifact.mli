(** Round-trip between circuits/specs and the [map --json] artifact.

    [mmsynth map --json] embeds the stitched circuit IR ([circuit_ir], the
    {!Mm_core.Emit.to_json} shape) and the specification's truth tables
    ([spec_tables]) in its artifact so a later [mmsynth resyn] invocation
    can re-optimize the committed implementation without re-running the
    mapper. This module is the parsing side (plus the small helpers the CLI
    uses to embed them): strict on structure — a malformed artifact is an
    [Error] with the offending field, never a silently-dropped circuit —
    and every parsed circuit is structurally validated by
    {!Mm_core.Circuit.make} before being returned. *)

module Circuit = Mm_core.Circuit
module Spec = Mm_boolfun.Spec
module Json = Mm_report.Json

(** The {!Mm_core.Emit.to_json} object, as a parsed JSON value. *)
val circuit_to_json : Circuit.t -> Json.t

(** Inverse of {!circuit_to_json} (accepts the [circuit_ir] field of a map
    artifact). Sources are [{"kind":"literal","name":...}], [{"kind":"leg",
    "index":...}], [{"kind":"vop","leg":...,"step":...}] or [{"kind":"rop",
    "index":...}]; literal names are [const-0], [const-1], [x3], [~x3]. *)
val circuit_of_json : Json.t -> (Circuit.t, string) result

(** [{"name": ..., "arity": n, "tables": ["0101...", ...]}] — one
    [2^n]-character row string per output. *)
val spec_to_json : Spec.t -> Json.t

val spec_of_json : Json.t -> (Spec.t, string) result
