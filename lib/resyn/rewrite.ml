module Circuit = Mm_core.Circuit
module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Rop = Mm_core.Rop
module Engine = Mm_engine.Engine

type origin = Trivial | Atlas | Solver

type candidate = {
  window : Window.t;
  fn : Extract.fn;
  old_rops : int;
  new_rops : int;
  origin : origin;
  exact : bool;
  optimal : bool;
  class_rep : Tt.t option;
}

type repl =
  | R_const of bool
  | R_wire of bool
  | R_circuit of Circuit.t

(* The replacement segment is assembled in the OLD index space, with
   references to its own fresh R-ops encoded as [From_rop (-(1+j))]
   sentinels (j = position within the segment); a final conversion pass
   renumbers everything at once. *)
let sentinel j = Circuit.From_rop (-(1 + j))

let splice (c : Circuit.t) (w : Window.t) (live_in : Circuit.source array)
    (repl : repl) : Circuit.t * int =
  let n_r = Circuit.n_rops c in
  let members = w.Window.members in
  let o = w.Window.live_out in
  let in_window = Hashtbl.create 8 in
  Array.iter (fun m -> Hashtbl.replace in_window m ()) members;
  (* NOR(s,s) inverters surviving outside the window and defined before the
     insertion point, reusable instead of materializing a fresh one; only
     NOR(x,x) is an inverter (NIMP(x,x) is constant 0) *)
  let avail = Hashtbl.create 8 in
  (match c.Circuit.rop_kind with
  | Rop.Nor ->
    for r = 0 to o - 1 do
      if not (Hashtbl.mem in_window r) then begin
        let { Circuit.in1; in2 } = c.Circuit.rops.(r) in
        if in1 = in2 && not (Hashtbl.mem avail in1) then
          Hashtbl.add avail in1 (Circuit.From_rop r)
      end
    done
  | Rop.Nimp -> ());
  let fresh = ref [] and n_fresh = ref 0 in
  let push rop =
    fresh := rop :: !fresh;
    incr n_fresh;
    sentinel (!n_fresh - 1)
  in
  let negated (s : Circuit.source) =
    match s with
    | Circuit.From_literal l -> Circuit.From_literal (Literal.negate l)
    | s -> (
      match Hashtbl.find_opt avail s with
      | Some r -> r
      | None ->
        let r = push { Circuit.in1 = s; in2 = s } in
        Hashtbl.add avail s r;
        r)
  in
  let out_src =
    match repl with
    | R_const b ->
      Circuit.From_literal (if b then Literal.Const1 else Literal.Const0)
    | R_wire false -> live_in.(0)
    | R_wire true -> negated live_in.(0)
    | R_circuit blk ->
      if Array.length blk.Circuit.legs > 0 then
        invalid_arg "Rewrite.splice: replacement block must be 0-leg";
      let local = Array.make (Circuit.n_rops blk) (sentinel 0) in
      let resolve (s : Circuit.source) =
        match s with
        | Circuit.From_literal (Literal.Const0 | Literal.Const1) -> s
        | Circuit.From_literal (Literal.Pos j) -> live_in.(j - 1)
        | Circuit.From_literal (Literal.Neg j) -> negated live_in.(j - 1)
        | Circuit.From_rop i -> local.(i)
        | Circuit.From_leg _ | Circuit.From_vop _ ->
          invalid_arg "Rewrite.splice: replacement block must be 0-leg"
      in
      Array.iteri
        (fun i (r : Circuit.rop) ->
          let a = resolve r.Circuit.in1 in
          let b = resolve r.Circuit.in2 in
          local.(i) <- push { Circuit.in1 = a; in2 = b })
        blk.Circuit.rops;
      resolve blk.Circuit.outputs.(0)
  in
  (* renumbering: surviving old R-op r keeps its relative order, the fresh
     segment occupies the live-out's slot *)
  let remap = Array.make n_r (-1) in
  let next = ref 0 in
  let p_new = ref (-1) in
  for r = 0 to n_r - 1 do
    if r = o then begin
      p_new := !next;
      next := !next + !n_fresh
    end
    else if not (Hashtbl.mem in_window r) then begin
      remap.(r) <- !next;
      incr next
    end
  done;
  let rec conv (s : Circuit.source) =
    match s with
    | Circuit.From_rop r when r < 0 -> Circuit.From_rop (!p_new + (-r - 1))
    | Circuit.From_rop r when Hashtbl.mem in_window r ->
      if r = o then conv out_src
      else invalid_arg "Rewrite.splice: dangling window-internal reference"
    | Circuit.From_rop r -> Circuit.From_rop remap.(r)
    | s -> s
  in
  let rops = Array.make !next { Circuit.in1 = out_src; in2 = out_src } in
  let pos = ref 0 in
  for r = 0 to n_r - 1 do
    if r = o then
      List.iteri
        (fun j (rop : Circuit.rop) ->
          rops.(!pos + j) <-
            { Circuit.in1 = conv rop.Circuit.in1; in2 = conv rop.Circuit.in2 })
        (List.rev !fresh)
    else ();
    if r = o then pos := !pos + !n_fresh
    else if not (Hashtbl.mem in_window r) then begin
      let rop = c.Circuit.rops.(r) in
      rops.(!pos) <-
        { Circuit.in1 = conv rop.Circuit.in1; in2 = conv rop.Circuit.in2 };
      incr pos
    end
  done;
  let outputs = Array.map conv c.Circuit.outputs in
  ( Circuit.make ~arity:c.Circuit.arity ~rop_kind:c.Circuit.rop_kind
      ~legs:c.Circuit.legs ~rops ~outputs (),
    !n_fresh )

let attempt ~probe (c : Circuit.t) (w : Window.t) :
    (Circuit.t * candidate) option =
  let fn = Extract.table c w in
  let width = Window.width w in
  let finish repl origin exact optimal class_rep =
    let c', n_new = splice c w fn.Extract.live_in repl in
    if n_new < width then
      Some
        ( c',
          {
            window = w;
            fn;
            old_rops = width;
            new_rops = n_new;
            origin;
            exact;
            optimal;
            class_rep;
          } )
    else None
  in
  let m = Tt.arity fn.Extract.tt in
  if Tt.is_const fn.Extract.tt then
    finish (R_const (Tt.eval fn.Extract.tt 0)) Trivial true true None
  else if m = 1 then
    (* the only non-constant 1-var functions are x1 and ¬x1 *)
    finish (R_wire (Tt.equal fn.Extract.tt (Tt.nvar 1 1))) Trivial true true None
  else if m > 4 then None
  else
    match probe ~budget_rops:(width - 1) fn.Extract.tt with
    | None -> None
    | Some (p : Engine.probe) ->
      let origin =
        if p.Engine.probe_report.Mm_core.Synth.attempts = [] then Atlas
        else Solver
      in
      finish (R_circuit p.Engine.probe_circuit) origin p.Engine.probe_exact
        p.Engine.probe_optimal p.Engine.probe_class_rep
