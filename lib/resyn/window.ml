module Circuit = Mm_core.Circuit
module Literal = Mm_boolfun.Literal

type t = {
  members : int array;
  live_in : Circuit.source array;
  live_out : int;
}

let width w = Array.length w.members
let lo w = w.members.(0)

let source_key (s : Circuit.source) =
  match s with
  | Circuit.From_literal (Literal.Neg i) -> Circuit.From_literal (Literal.Pos i)
  | s -> s

(* distinct external signals read by [members], first-use order; None when
   the count leaves [1 .. max_live] *)
let live_ins (c : Circuit.t) ~max_live (members : int array) =
  let inside = Hashtbl.create 8 in
  Array.iter (fun m -> Hashtbl.replace inside m ()) members;
  let seen = Hashtbl.create 8 in
  let ins = ref [] and count = ref 0 and ok = ref true in
  let add (s : Circuit.source) =
    match s with
    | Circuit.From_literal (Literal.Const0 | Literal.Const1) -> ()
    | Circuit.From_rop r when Hashtbl.mem inside r -> ()
    | s ->
      let k = source_key s in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        ins := k :: !ins;
        incr count;
        if !count > max_live then ok := false
      end
  in
  Array.iter
    (fun m ->
      let { Circuit.in1; in2 } = c.Circuit.rops.(m) in
      add in1;
      add in2)
    members;
  if !ok && !count >= 1 then Some (Array.of_list (List.rev !ins)) else None

let enumerate ?(max_width = 6) ?(max_live = 6) (c : Circuit.t) =
  let n_r = Circuit.n_rops c in
  if n_r = 0 then []
  else begin
    let out_ref = Array.make n_r false in
    Array.iter
      (function Circuit.From_rop r -> out_ref.(r) <- true | _ -> ())
      c.Circuit.outputs;
    (* rop-level consumer lists (ascending, each consumer index > producer) *)
    let consumers = Array.make n_r [] in
    Array.iteri
      (fun j (r : Circuit.rop) ->
        let see = function
          | Circuit.From_rop i -> consumers.(i) <- j :: consumers.(i)
          | _ -> ()
        in
        see r.Circuit.in2;
        see r.Circuit.in1)
      c.Circuit.rops;
    let last_use = Array.map (function [] -> -1 | j :: _ -> j) consumers in
    let windows = ref [] and seen_members = Hashtbl.create 64 in
    let emit members =
      let key = Array.to_list members in
      if not (Hashtbl.mem seen_members key) then begin
        Hashtbl.add seen_members key ();
        match live_ins c ~max_live members with
        | Some live_in ->
          windows :=
            { members; live_in; live_out = members.(Array.length members - 1) }
            :: !windows
        | None -> ()
      end
    in
    (* family 1: contiguous single-live-out spans *)
    for lo = 0 to n_r - 1 do
      for hi = lo + 2 to min n_r (lo + max_width) do
        let n_live_out = ref 0 and live_out = ref (-1) in
        for r = lo to hi - 1 do
          if out_ref.(r) || last_use.(r) >= hi then begin
            incr n_live_out;
            live_out := r
          end
        done;
        if !n_live_out = 1 && !live_out = hi - 1 then
          emit (Array.init (hi - lo) (fun i -> lo + i))
      done
    done;
    (* family 2: the capped maximum fanout-free cone of every R-op — grown
       by repeatedly absorbing any input R-op all of whose consumers are
       already members (a rejected candidate can become eligible once a
       later sibling joins, hence the fixpoint loop) *)
    for o = n_r - 1 downto 0 do
      let members = Hashtbl.create 8 in
      Hashtbl.replace members o ();
      let size = ref 1 in
      let changed = ref true in
      while !changed && !size < max_width do
        changed := false;
        let candidates = Hashtbl.create 8 in
        Hashtbl.iter
          (fun m () ->
            let see = function
              | Circuit.From_rop r when not (Hashtbl.mem members r) ->
                Hashtbl.replace candidates r ()
              | _ -> ()
            in
            let { Circuit.in1; in2 } = c.Circuit.rops.(m) in
            see in1;
            see in2)
          members;
        (* largest first: consumers have larger indices than producers *)
        Hashtbl.fold (fun r () acc -> r :: acc) candidates []
        |> List.sort (fun a b -> compare b a)
        |> List.iter (fun r ->
               if
                 !size < max_width
                 && (not (out_ref.(r)))
                 && List.for_all
                      (fun j -> Hashtbl.mem members j)
                      consumers.(r)
               then begin
                 Hashtbl.replace members r ();
                 incr size;
                 changed := true
               end)
      done;
      if !size >= 2 then begin
        let ms =
          Hashtbl.fold (fun m () acc -> m :: acc) members []
          |> List.sort compare |> Array.of_list
        in
        emit ms
      end
    done;
    List.sort
      (fun a b ->
        if a.live_out <> b.live_out then compare a.live_out b.live_out
        else compare (width a) (width b))
      !windows
  end
