(** Windowed SAT-sweeping resynthesis over stitched schedules.

    Post-mapping optimization: the mapper's cut boundaries hide cross-block
    sharing, so the committed implementation is re-examined {e after}
    stitching, where the boundaries are gone. Three cooperating mechanisms
    (cleanup = sweeps + {!compact_legs} leg compaction):

    + {b cleanup sweeps} — semantic sweeping by complete simulation (the
      arity here is small enough that a truth table is cheaper than a SAT
      sweep): any R-op whose global function duplicates an earlier signal
      (literal, final leg value, or earlier R-op) is redirected onto it,
      then dead R-ops are eliminated. This alone captures most cross-block
      inverter/leaf duplication the stitcher could not see.
    + {b window rewrites} — every legal {!Window.t} is extracted
      ({!Extract}) and re-synthesized exactly under its own budget
      ({!Rewrite} through {!Mm_engine.Engine.probe_window}, atlas-first);
      strictly-cheaper replacements are spliced in.

    Acceptance criterion (1D): a splice is committed only when the rebuilt
    circuit passes [Circuit.realizes] against the full specification — a
    rewrite bug becomes a rejected splice, never a wrong answer — and the
    step count is strictly lower by construction. The loop alternates
    cleanup and window sweeps to a fixed point or a pass cap; steps are
    monotonically non-increasing throughout.

    The crossbar variant works at cover level: the cycle-accurate schedule
    is a function of the block cover, so {!optimize_xbar} merges
    single-consumer producer blocks into their consumers (re-synthesizing
    the composed ≤4-support function through {!Mm_map.Blocklib}), rebuilds
    placement + schedule, replays it on the device simulator
    ({!Mm_map.Xstitch.verify}), and accepts only verified schedules with
    strictly fewer cycles. *)

module Circuit = Mm_core.Circuit
module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Engine = Mm_engine.Engine
module Stitch = Mm_map.Stitch
module Xstitch = Mm_map.Xstitch

(** {2 Cleanup sweeps (1D)} *)

(** Redirect R-ops computing an already-available function (by complete
    simulation over all [2^arity] rows) onto the earlier signal; returns
    the count redirected. Skipped above arity 14 (table size). *)
val sweep_merge : Circuit.t -> Circuit.t * int

(** Drop R-ops unreachable from the outputs; legs are kept (removing a leg
    cannot reduce the step metric). Returns the count removed. *)
val dce : Circuit.t -> Circuit.t * int

(** Delete hold V-ops (TE = BE — Table I: the leg state is unchanged) and
    left-pack every leg. The stitcher serializes independent blocks in
    time, padding all other legs with holds over each block's span; the
    line array steps all legs in lockstep, so those holds only inflate
    [steps_per_leg]. Mid-leg taps are remapped onto the surviving prefix
    (a tap before any surviving op reads the initial state, constant 0).
    Returns the V-steps saved ([steps_per_leg] before − after); the
    identity when nothing shrinks. *)
val compact_legs : Circuit.t -> Circuit.t * int

(** {2 1D driver} *)

type stats = {
  passes : int;  (** sweeps actually run (≤ the cap) *)
  fixed_point : bool;  (** converged before the pass cap *)
  windows_attempted : int;
  windows_accepted : int;
  trivial_hits : int;  (** accepted without any probe *)
  atlas_hits : int;  (** accepted from the atlas tier, zero solver calls *)
  solver_hits : int;  (** accepted via the SAT pipeline / cache *)
  probe_calls : int;  (** engine probes issued (memoized misses) *)
  rejected : int;  (** candidates failing full-spec re-verification *)
  sweep_merged : int;
  dce_removed : int;
  v_steps_saved : int;  (** [steps_per_leg] reclaimed by {!compact_legs} *)
  steps_before : int;
  steps_after : int;
  wall_s : float;
}

type t = {
  circuit : Circuit.t;  (** re-verified against the spec on all rows *)
  splices : Rewrite.candidate list;  (** chronological; provenance per splice *)
  stats : stats;
}

(** [optimize cfg spec circuit] — [circuit] must realize [spec] (raises
    [Invalid_argument] otherwise). Defaults: [max_width = 6],
    [max_live = 6], [max_passes = 4]. The probe budget derives from
    [cfg] with [max_rops] clamped per window. *)
val optimize :
  ?max_width:int ->
  ?max_live:int ->
  ?max_passes:int ->
  Engine.config ->
  Spec.t ->
  Circuit.t ->
  t

(** {2 Crossbar driver (cover level)} *)

type xstats = {
  xpasses : int;
  merges_attempted : int;
  merges_accepted : int;  (** producer blocks absorbed into consumers *)
  rebuilds_rejected : int;
      (** rebuilt schedules discarded (verification failed or cycles did
          not strictly improve) *)
  cycles_before : int;
  cycles_after : int;
  xwall_s : float;
}

type xresult = {
  result : Xstitch.result;  (** verified; cycles ≤ the input schedule's *)
  xstats : xstats;
}

(** [optimize_xbar cfg spec r] never regresses: the input schedule is
    returned unchanged unless a rebuilt one verifies with strictly fewer
    cycles. [rows]/[ports]/[polish] must match the original compile;
    [v_weight] (default 2.0, the crossbar mapping default) prices the
    merge pre-filter. *)
val optimize_xbar :
  ?max_passes:int ->
  ?rows:int ->
  ?ports:int ->
  ?polish:bool ->
  ?v_weight:float ->
  Engine.config ->
  Spec.t ->
  Xstitch.result ->
  xresult
