(** Window function extraction by forward simulation.

    A legal {!Window.t} computes one Boolean function of its live-in
    signals at the live-out. {!table} tabulates it by replaying the member
    R-ops in schedule order ({!Mm_core.Rop.eval}, the device semantics) on
    every live-in assignment — [x_{i+1}] of the raw table is [live_in.(i)],
    with the paper's row convention ([x_1] = MSB of the row index). The raw
    table is then projected onto its true support, so live-ins the window
    reads but whose value cannot reach the live-out drop out before the
    solver budget check.

    Soundness does not depend on live-in independence: the extracted table
    reproduces the window's behaviour on {e every} assignment, a superset
    of the combinations the surrounding circuit can realize. *)

module Circuit = Mm_core.Circuit
module Tt = Mm_boolfun.Truth_table

type fn = {
  tt : Tt.t;  (** projected to its support *)
  live_in : Circuit.source array;
      (** support signals, in table-variable order: [x_{i+1}] of [tt] is
          [live_in.(i)]. Empty when the window is constant. *)
}

val table : Circuit.t -> Window.t -> fn
