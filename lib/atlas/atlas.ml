module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Circuit = Mm_core.Circuit
module Rop = Mm_core.Rop
module Encode = Mm_core.Encode
module Synth = Mm_core.Synth
module Heuristic = Mm_core.Heuristic
module Baseline = Mm_core.Baseline
module Npn = Mm_engine.Npn
module Pool = Mm_engine.Pool
module Cache = Mm_engine.Cache

let magic = "MMSYNTH-ATLAS"
let format_version = 1

type mode = Mixed | R_only

let mode_to_string = function Mixed -> "mixed" | R_only -> "r-only"

type cert = {
  c_legs : int;
  c_steps : int;
  c_rops : int;
  c_conflicts : int;
  c_time_s : float;
}

type record = {
  mode : mode;
  rop_kind : Rop.kind;
  taps : Encode.taps;
  arity : int;
  target : int;
  circuit : Circuit.t;
  rops : int;
  steps : int;
  legs : int;
  effort : int;
  rops_exact : bool;
  steps_exact : bool;
  certificates : cert list;
  wall_s : float;
}

type t = { path : string; table : (string, record) Hashtbl.t }

type error =
  | Missing
  | Bad_magic
  | Bad_version of int
  | Damaged of { kept : int; dropped : int; torn : bool }

let pp_error ppf = function
  | Missing -> Format.fprintf ppf "no atlas file"
  | Bad_magic -> Format.fprintf ppf "not an atlas file (bad magic)"
  | Bad_version v ->
    Format.fprintf ppf "atlas format version %d (this build reads %d)" v
      format_version
  | Damaged { kept; dropped; torn } ->
    Format.fprintf ppf
      "damaged atlas: %d records readable, %d failed their checksum%s" kept
      dropped
      (if torn then ", torn tail (truncation or garbage)" else "")

(* R-only circuits have no V-legs, so the tap discipline cannot matter:
   one stored record serves both [Final_only] and [Any_vop] queries. *)
let norm_taps mode taps =
  match mode with R_only -> Encode.Final_only | Mixed -> taps

let key ~mode ~rop_kind ~taps ~arity ~target =
  Printf.sprintf "%s|%s|%s|n%d|%04x"
    (match mode with Mixed -> "mixed" | R_only -> "r")
    (Rop.to_string rop_kind)
    (match norm_taps mode taps with
     | Encode.Final_only -> "fin"
     | Encode.Any_vop -> "any")
    arity target

let key_of_record r =
  key ~mode:r.mode ~rop_kind:r.rop_kind ~taps:r.taps ~arity:r.arity
    ~target:r.target

(* ---- file I/O --------------------------------------------------------- *)

(* Same checksummed framing as the engine cache: each record is
   Marshal (MD5 digest, payload), payload the marshalled (key, record).
   A digest failure skips the record; a torn frame ends the read. *)

type read_result = {
  r_table : (string, record) Hashtbl.t;
  r_dropped : int;
  r_torn : bool;
}

let read_raw path =
  match open_in_bin path with
  | exception Sys_error _ -> Error Missing
  | ic ->
    let finish r =
      close_in_noerr ic;
      r
    in
    (match really_input_string ic (String.length magic) with
     | exception End_of_file -> finish (Error Bad_magic)
     | m when m <> magic -> finish (Error Bad_magic)
     | _ -> (
       match (Marshal.from_channel ic : int) with
       | exception (End_of_file | Failure _) -> finish (Error Bad_magic)
       | v when v <> format_version -> finish (Error (Bad_version v))
       | _ ->
         let table = Hashtbl.create 512 in
         let dropped = ref 0 and torn = ref false in
         let reading = ref true in
         while !reading do
           match (Marshal.from_channel ic : Digest.t * string) with
           | exception End_of_file -> reading := false
           | exception Failure _ ->
             torn := true;
             reading := false
           | digest, payload ->
             if Digest.string payload = digest then (
               match (Marshal.from_string payload 0 : string * record) with
               | k, r -> Hashtbl.replace table k r
               | exception Failure _ -> incr dropped)
             else incr dropped
         done;
         finish
           (Ok { r_table = table; r_dropped = !dropped; r_torn = !torn })))

let load path =
  match read_raw path with
  | Error e -> Error e
  | Ok { r_table; r_dropped; r_torn } ->
    if r_dropped > 0 || r_torn then
      Error
        (Damaged
           { kept = Hashtbl.length r_table; dropped = r_dropped; torn = r_torn })
    else Ok { path; table = r_table }

let path t = t.path
let size t = Hashtbl.length t.table

let records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.table []
  |> List.sort (fun a b -> compare (key_of_record a) (key_of_record b))

let tmp_counter = Atomic.make 0

let write_records path table =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  let oc = open_out_bin tmp in
  output_string oc magic;
  Marshal.to_channel oc format_version [];
  Hashtbl.iter
    (fun k r ->
      let payload = Marshal.to_string (k, r) [] in
      Marshal.to_channel oc (Digest.string payload, payload) [])
    table;
  close_out oc;
  Sys.rename tmp path

(* ---- lookup ----------------------------------------------------------- *)

let find t ~mode ~rop_kind ~taps f =
  let n = Tt.arity f in
  if n < 1 || n > 4 then None
  else begin
    (* the engine's member→target map: target = rep in f's output
       polarity, reached by an input-only transform *)
    let _, u = Npn.canon f in
    let t_in = Npn.input_only u in
    let target = Npn.apply t_in f in
    match
      Hashtbl.find_opt t.table
        (key ~mode ~rop_kind ~taps ~arity:n ~target:(Tt.to_int target))
    with
    | None -> None
    | Some r -> (
      let c = Npn.apply_circuit (Npn.inverse t_in) r.circuit in
      match Circuit.realizes c (Spec.make ~name:"atlas-query" [| f |]) with
      | Ok () -> Some (c, r)
      | Error _ -> None)
  end

let attach t cache =
  Cache.set_atlas cache ~name:t.path (fun q ->
      if Spec.output_count q.Cache.q_spec <> 1 then None
      else
        let f = Spec.output q.Cache.q_spec 0 in
        let mode = match q.Cache.q_mode with `Mixed -> Mixed | `R_only -> R_only in
        match find t ~mode ~rop_kind:q.Cache.q_rop_kind ~taps:q.Cache.q_taps f with
        | Some (c, r)
          when r.rops_exact
               && (match q.Cache.q_max_rops with
                   | Some m -> r.rops <= m
                   | None -> true)
               && (match q.Cache.q_max_steps with
                   | Some m -> r.steps <= m
                   | None -> true) ->
          Some
            {
              Cache.a_circuit = c;
              a_rops = r.rops;
              a_steps = r.steps;
              a_legs = r.legs;
              a_rops_exact = r.rops_exact;
              a_steps_exact = r.steps_exact;
              a_effort = r.effort;
            }
        | Some _ | None -> None)

(* ---- building --------------------------------------------------------- *)

type goal = {
  g_mode : mode;
  g_rop_kind : Rop.kind;
  g_taps : Encode.taps;
  g_target : Tt.t;
}

let goal_key g =
  key ~mode:g.g_mode ~rop_kind:g.g_rop_kind ~taps:g.g_taps
    ~arity:(Tt.arity g.g_target) ~target:(Tt.to_int g.g_target)

let universe ?(modes = [ Mixed; R_only ]) ?(rop_kind = Rop.Nor)
    ?(taps = Encode.Any_vop) ?(include_tts = []) ~max_n () =
  if max_n < 1 || max_n > 4 then
    invalid_arg "Atlas.universe: max_n must be 1..4";
  let seen = Hashtbl.create 2048 in
  let out = ref [] in
  let add_target tt =
    List.iter
      (fun g_mode ->
        let g = { g_mode; g_rop_kind = rop_kind; g_taps = taps; g_target = tt } in
        let k = goal_key g in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          out := g :: !out
        end)
      modes
  in
  (* both polarity targets of a class: rep and its complement (see .mli) *)
  let add_class rep =
    add_target rep;
    add_target (Tt.lnot rep)
  in
  for n = 1 to max_n do
    List.iter add_class (Npn.class_reps n)
  done;
  List.iter
    (fun f ->
      if Tt.arity f >= 1 && Tt.arity f <= 4 then
        add_class (fst (Npn.canon f)))
    include_tts;
  List.rev !out

(* A record satisfies a requested effort tier when it was already built at
   that tier (don't re-burn timeouts on resume) or already carries the
   proofs the tier aims for. *)
let satisfies ~effort r =
  r.effort >= effort
  ||
  match effort with
  | 1 -> true
  | 2 -> r.rops_exact
  | _ -> r.rops_exact && r.steps_exact

let certs_of_report (report : Synth.report) =
  List.filter_map
    (fun (a : Synth.attempt) ->
      match a.Synth.verdict with
      | Synth.Unsat ->
        Some
          {
            c_legs = a.Synth.n_legs;
            c_steps = a.Synth.steps_per_leg;
            c_rops = a.Synth.n_rops;
            c_conflicts = a.Synth.solver_stats.Mm_sat.Solver.conflicts;
            c_time_s = a.Synth.time_s;
          }
      | Synth.Sat _ | Synth.Timeout -> None)
    report.Synth.attempts

let record_of_circuit ~goal ~effort ~rops_exact ~steps_exact ~certificates
    ~wall_s c =
  {
    mode = goal.g_mode;
    rop_kind = goal.g_rop_kind;
    taps = norm_taps goal.g_mode goal.g_taps;
    arity = Tt.arity goal.g_target;
    target = Tt.to_int goal.g_target;
    circuit = c;
    rops = Circuit.n_rops c;
    steps = Circuit.steps_per_leg c;
    legs = Circuit.n_legs c;
    effort;
    rops_exact;
    steps_exact;
    certificates;
    wall_s;
  }

(* Tier 1: verified heuristic, no SAT. Both heuristics emit NOR-kind
   circuits, so other R-op kinds have no tier-1 path; a Final_only mixed
   goal only accepts a heuristic circuit that happens to respect it. *)
let solve_heuristic goal =
  if goal.g_rop_kind <> Rop.Nor then None
  else
    let spec =
      Spec.make ~name:"atlas-goal" [| goal.g_target |]
    in
    let candidate =
      match goal.g_mode with
      | Mixed -> (
        match Heuristic.synthesize ~timeout_per_block:5. spec with
        | c, _ -> Some c
        | exception _ -> None)
      | R_only -> (
        match Baseline.nor_network spec with
        | c -> Some c
        | exception _ -> None)
    in
    match candidate with
    | Some c
      when Circuit.realizes c spec = Ok ()
           && (goal.g_mode = R_only
               || norm_taps goal.g_mode goal.g_taps = Encode.Any_vop
               || Circuit.final_taps_only c) ->
      Some c
    | Some _ | None -> None

let solve_sat ?prove ~budget goal =
  let spec = Spec.make ~name:"atlas-goal" [| goal.g_target |] in
  let prove = Option.map (fun f -> f spec) prove in
  match goal.g_mode with
  | Mixed ->
    Synth.minimize ~timeout_per_call:budget ~rop_kind:goal.g_rop_kind
      ~taps:goal.g_taps ~incremental:true ?prove spec
  | R_only ->
    Synth.minimize_r_only ~timeout_per_call:budget ~rop_kind:goal.g_rop_kind
      ~incremental:true ?prove spec

let solve_goal ?prove ~effort ~timeout_per_call goal =
  let t0 = Unix.gettimeofday () in
  let wall () = Unix.gettimeofday () -. t0 in
  if effort <= 1 then
    Option.map
      (fun c ->
        record_of_circuit ~goal ~effort:1 ~rops_exact:false ~steps_exact:false
          ~certificates:[] ~wall_s:(wall ()) c)
      (solve_heuristic goal)
  else begin
    let budget =
      if effort >= 3 then timeout_per_call *. 4. else timeout_per_call
    in
    let report = solve_sat ?prove ~budget goal in
    match report.Synth.best with
    | Some (c, _) ->
      let rops_exact = report.Synth.rops_proven_minimal in
      let steps_exact =
        match goal.g_mode with
        | R_only ->
          (* no V-steps exist: step minimality degenerates to R minimality *)
          rops_exact
        | Mixed -> report.Synth.steps_proven_minimal
      in
      Some
        (record_of_circuit ~goal ~effort ~rops_exact ~steps_exact
           ~certificates:(certs_of_report report) ~wall_s:(wall ()) c)
    | None ->
      (* budget gone with no exact circuit: degrade to a tier-1 record so
         the goal is at least covered for non-exact consumers *)
      Option.map
        (fun c ->
          record_of_circuit ~goal ~effort:1 ~rops_exact:false
            ~steps_exact:false ~certificates:[] ~wall_s:(wall ()) c)
        (solve_heuristic goal)
  end

type build_stats = {
  total : int;
  built : int;
  reused : int;
  failed : int;
  reproved : int;
  wall_s : float;
}

let build ?(effort = 2) ?domains ?(timeout_per_call = 10.) ?(resume = true)
    ?progress ?prove ~path goals =
  if effort < 1 || effort > 3 then
    invalid_arg "Atlas.build: effort must be 1..3";
  let t0 = Unix.gettimeofday () in
  let say msg = match progress with Some f -> f msg | None -> () in
  (* resumed table: the valid prefix of whatever is already at [path] *)
  let seed =
    if not resume then Ok (Hashtbl.create 512)
    else
      match read_raw path with
      | Error Missing -> Ok (Hashtbl.create 512)
      | Error e -> Error e
      | Ok { r_table; r_dropped; r_torn } ->
        if r_dropped > 0 || r_torn then
          say
            (Printf.sprintf
               "resuming damaged file: %d records salvaged, %d dropped%s"
               (Hashtbl.length r_table) r_dropped
               (if r_torn then ", torn tail" else ""));
        Ok r_table
  in
  match seed with
  | Error e -> Error e
  | Ok table ->
    (* dedupe goals, drop the ones the resumed records already satisfy *)
    let seen = Hashtbl.create 2048 in
    let todo =
      List.filter
        (fun g ->
          let k = goal_key g in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            match Hashtbl.find_opt table k with
            | Some r when satisfies ~effort r -> false
            | Some _ | None -> true
          end)
        goals
    in
    let total = Hashtbl.length seen in
    let reused = total - List.length todo in
    let built = ref 0 and failed = ref 0 in
    let domains =
      match domains with Some d -> max 1 d | None -> Pool.default_domains ()
    in
    let chunk_size = max 8 (domains * 4) in
    let todo = Array.of_list todo in
    let n_todo = Array.length todo in
    let pos = ref 0 in
    while !pos < n_todo do
      let len = min chunk_size (n_todo - !pos) in
      let chunk = Array.sub todo !pos len in
      let outs =
        Pool.run ~domains
          (Array.map
             (fun g () -> solve_goal ~effort ~timeout_per_call g)
             chunk)
      in
      Array.iteri
        (fun i o ->
          match o.Pool.result with
          | Ok (Some r) ->
            Hashtbl.replace table (goal_key chunk.(i)) r;
            incr built
          | Ok None | Error _ -> incr failed)
        outs;
      (* atomic checkpoint: an interrupted build resumes from here *)
      write_records path table;
      pos := !pos + len;
      say
        (Printf.sprintf "%d/%d goals (%d built, %d reused, %d failed), %.1fs"
           (reused + !pos) total (!built) reused (!failed)
           (Unix.gettimeofday () -. t0))
    done;
    if n_todo = 0 then write_records path table;
    (* Parallel-proof re-attack: goals that are covered only by a degraded
       (tier-1 or proof-incomplete) record get one more shot through the
       prove orchestrator. The loop itself runs sequentially on the calling
       domain — each prove call spreads its own workers over the pool, so
       running two orchestrators at once would only have them steal each
       other's cores. *)
    let reproved = ref 0 in
    (match prove with
     | None -> ()
     | Some _ ->
       let stale_seen = Hashtbl.create 64 in
       let stale =
         List.filter
           (fun g ->
             let k = goal_key g in
             if Hashtbl.mem stale_seen k then false
             else begin
               Hashtbl.add stale_seen k ();
               match Hashtbl.find_opt table k with
               | Some r -> not (satisfies ~effort r)
               | None -> true
             end)
           goals
       in
       List.iter
         (fun g ->
           match solve_goal ?prove ~effort ~timeout_per_call g with
           | Some r when satisfies ~effort r ->
             Hashtbl.replace table (goal_key g) r;
             incr reproved;
             write_records path table;
             say
               (Printf.sprintf "re-proved %s via prove orchestrator"
                  (goal_key g))
           | Some _ | None -> ())
         stale;
       if !reproved > 0 then failed := max 0 (!failed - !reproved));
    Ok
      {
        total;
        built = !built;
        reused;
        failed = !failed;
        reproved = !reproved;
        wall_s = Unix.gettimeofday () -. t0;
      }

(* ---- inspection ------------------------------------------------------- *)

type file_info = {
  i_version : int;
  i_records : int;
  i_bytes : int;
  i_by_arity : (int * int) list;
  i_by_mode : (mode * int) list;
  i_by_effort : (int * int) list;
  i_rops_exact : int;
  i_both_exact : int;
  i_certificates : int;
  i_damage : (int * bool) option;
}

let info path =
  match read_raw path with
  | Error e -> Error e
  | Ok { r_table; r_dropped; r_torn } ->
    let bump assoc k =
      match List.assoc_opt k !assoc with
      | Some n -> assoc := (k, n + 1) :: List.remove_assoc k !assoc
      | None -> assoc := (k, 1) :: !assoc
    in
    let by_arity = ref [] and by_mode = ref [] and by_effort = ref [] in
    let rops_exact = ref 0 and both_exact = ref 0 and certs = ref 0 in
    Hashtbl.iter
      (fun _ r ->
        bump by_arity r.arity;
        bump by_mode r.mode;
        bump by_effort r.effort;
        if r.rops_exact then incr rops_exact;
        if r.rops_exact && r.steps_exact then incr both_exact;
        certs := !certs + List.length r.certificates)
      r_table;
    Ok
      {
        i_version = format_version;
        i_records = Hashtbl.length r_table;
        i_bytes =
          (match Unix.stat path with
           | { Unix.st_size; _ } -> st_size
           | exception Unix.Unix_error _ -> 0);
        i_by_arity = List.sort compare !by_arity;
        i_by_mode = List.sort compare !by_mode;
        i_by_effort = List.sort compare !by_effort;
        i_rops_exact = !rops_exact;
        i_both_exact = !both_exact;
        i_certificates = !certs;
        i_damage =
          (if r_dropped > 0 || r_torn then Some (r_dropped, r_torn) else None);
      }

(* ---- deep verification ------------------------------------------------ *)

type issue =
  | File_error of error
  | Wrong_rows of { key : string; row : int }
  | Metric_mismatch of { key : string; field : string; stored : int; actual : int }
  | Malformed of { key : string; what : string }

let pp_issue ppf = function
  | File_error e -> pp_error ppf e
  | Wrong_rows { key; row } ->
    Format.fprintf ppf "%s: circuit disagrees with its target on row %d" key
      row
  | Metric_mismatch { key; field; stored; actual } ->
    Format.fprintf ppf "%s: stored %s=%d but the circuit has %d" key field
      stored actual
  | Malformed { key; what } -> Format.fprintf ppf "%s: %s" key what

let verify path =
  match read_raw path with
  | Error e -> Error [ File_error e ]
  | Ok { r_table; r_dropped; r_torn } ->
    let issues = ref [] in
    let issue i = issues := i :: !issues in
    if r_dropped > 0 || r_torn then
      issue
        (File_error
           (Damaged
              {
                kept = Hashtbl.length r_table;
                dropped = r_dropped;
                torn = r_torn;
              }));
    Hashtbl.iter
      (fun key r ->
        if r.arity < 1 || r.arity > 4 then
          issue (Malformed { key; what = "arity out of range" })
        else begin
          let metric field stored actual =
            if stored <> actual then
              issue (Metric_mismatch { key; field; stored; actual })
          in
          metric "rops" r.rops (Circuit.n_rops r.circuit);
          metric "steps" r.steps (Circuit.steps_per_leg r.circuit);
          metric "legs" r.legs (Circuit.n_legs r.circuit);
          if r.mode = R_only && Circuit.n_legs r.circuit > 0 then
            issue (Malformed { key; what = "R-only record has V-legs" });
          if r.effort < 1 || r.effort > 3 then
            issue (Malformed { key; what = "effort out of range" });
          match
            Circuit.realizes r.circuit
              (Spec.make ~name:"atlas-verify"
                 [| Tt.of_int r.arity r.target |])
          with
          | Ok () -> ()
          | Error row -> issue (Wrong_rows { key; row })
          | exception _ ->
            issue (Malformed { key; what = "circuit fails validation" })
        end)
      r_table;
    if !issues = [] then Ok (Hashtbl.length r_table)
    else Error (List.rev !issues)
