(** The NPN block atlas: every ≤4-input synthesis answer, precomputed.

    The paper's central artifact is the complete set of SAT-optimal
    implementations of the 222 4-input NPN classes (2, 4 and 14 classes
    for n = 1..3). This module enumerates that universe {e offline} at
    escalating effort tiers, persists it as a compact, versioned,
    checksummed, read-only artifact, and serves whole minimization
    queries from it in microseconds with {e zero} solver calls — the
    engine attaches a loaded atlas as the immutable front tier of its
    {!Mm_engine.Cache} (see {!attach}).

    {2 Universe}

    A class contributes up to two stored {e targets}: the engine solves a
    member [f] as [apply (input_only t) f] where [t = snd (canon f)] —
    that is the class representative in the member's output polarity, so
    the targets are exactly [rep] and [lnot rep] — 484 targets for
    n ≤ 4 (2·(2+4+14+222)), 968 records across both modes. Records are keyed by (mode, R-op kind, tap discipline,
    arity, target); the tap discipline is normalized to [Final_only] for
    R-only records, which have no V-legs at all.

    {2 Effort tiers}

    - {e 1} — quick heuristic: the Shannon-flow {!Mm_core.Heuristic}
      (mixed) or QMC→NOR {!Mm_core.Baseline} (R-only) circuit, verified
      on all rows; no optimality claim.
    - {e 2} — exact: {!Mm_core.Synth.minimize} on the incremental ladder
      under the build budget; minimality flags as proven in budget.
    - {e 3} — exact with certificates: 4× budget, keeping the
      failed-assumption UNSAT-ladder certificates ([N_R - 1] etc.) as
      provenance metadata.

    A record stores the tier that produced it plus the proof flags it
    actually earned, so a tier-3 build whose proofs timed out is still
    honest. Only records with a proven-minimal R-op count are served to
    the engine.

    {2 File format}

    [magic "MMSYNTH-ATLAS" · Marshal version · record*] — each record a
    [(MD5 digest, payload)] pair exactly like the cache v3 framing:
    flipped payload bytes fail the digest, truncation tears the Marshal
    framing. {!load} is {e strict}: any damage is a typed error and the
    caller degrades to overlay-only operation. Builds are {e resumable}:
    the builder re-reads the valid prefix of an interrupted file, skips
    every goal already satisfied at the requested effort, and flushes
    (atomic tmp + rename) after every chunk. *)

module Tt = Mm_boolfun.Truth_table
module Spec = Mm_boolfun.Spec
module Circuit = Mm_core.Circuit
module Rop = Mm_core.Rop
module Encode = Mm_core.Encode
module Cache = Mm_engine.Cache

val magic : string
val format_version : int

type mode = Mixed | R_only

val mode_to_string : mode -> string

(** One failed-assumption optimality certificate: the solver refuted
    these dimensions in [c_time_s] seconds after [c_conflicts]
    conflicts. *)
type cert = {
  c_legs : int;
  c_steps : int;
  c_rops : int;
  c_conflicts : int;
  c_time_s : float;
}

type record = {
  mode : mode;
  rop_kind : Rop.kind;
  taps : Encode.taps;  (** normalized to [Final_only] when [R_only] *)
  arity : int;
  target : int;  (** {!Tt.to_int} of the stored solve target *)
  circuit : Circuit.t;  (** realizes the target; re-verified by {!find} *)
  rops : int;
  steps : int;  (** V-op steps per leg; 0 for [R_only] *)
  legs : int;
  effort : int;  (** tier that produced this record (1..3) *)
  rops_exact : bool;  (** R-op count proven minimal in budget *)
  steps_exact : bool;  (** step count proven minimal in budget *)
  certificates : cert list;  (** UNSAT-ladder provenance, newest last *)
  wall_s : float;  (** build wall-clock spent on this record *)
}

type t

(** Typed damage taxonomy for {!load}/{!info}. *)
type error =
  | Missing  (** no file at the path *)
  | Bad_magic  (** not an atlas file *)
  | Bad_version of int  (** wrong {!format_version} *)
  | Damaged of { kept : int; dropped : int; torn : bool }
      (** checksum-failed records ([dropped]) or a torn tail ([torn]);
          [kept] records were still readable *)

val pp_error : Format.formatter -> error -> unit

(** Strict read-only open: [Error] on any damage (serve/map/batch then
    run overlay-only — a partially trusted atlas is never served). *)
val load : string -> (t, error) result

val path : t -> string
val size : t -> int
val records : t -> record list

(** [find t ~mode ~rop_kind ~taps f] answers a whole minimization for the
    single-output function [f] (arity ≤ 4): canonicalize, look the target
    up, pull the stored class circuit back through the inverse input
    transform, and re-verify it against [f] on all rows. The returned
    circuit realizes [f]; the record carries the provenance. [None] on a
    missing target or (never expected) failed re-verification. *)
val find :
  t ->
  mode:mode ->
  rop_kind:Rop.kind ->
  taps:Encode.taps ->
  Tt.t ->
  (Circuit.t * record) option

(** Install [t] as the atlas tier of a cache: every {!Cache.find_class}
    probe becomes a {!find} with the query's search caps enforced
    ([q_max_rops]/[q_max_steps] — a minimal count above a cap is a miss,
    the engine then proves its own capped verdict). Only records with
    [rops_exact] are answered. *)
val attach : t -> Cache.t -> unit

(** {2 Building} *)

(** One enumeration goal: solve [g_target] in [g_mode]. *)
type goal = {
  g_mode : mode;
  g_rop_kind : Rop.kind;
  g_taps : Encode.taps;
  g_target : Tt.t;
}

(** The full goal universe: both polarity targets of every NPN class of
    arity 1..[max_n], in [modes] (default both), plus both polarity
    targets of the classes of every function in [include_tts] (any arity
    ≤ 4 — e.g. the bench workload, so a small atlas can cover chosen
    4-input classes without enumerating all 222). Deduplicated. *)
val universe :
  ?modes:mode list ->
  ?rop_kind:Rop.kind ->
  ?taps:Encode.taps ->
  ?include_tts:Tt.t list ->
  max_n:int ->
  unit ->
  goal list

type build_stats = {
  total : int;  (** goals requested *)
  built : int;  (** records solved in this run *)
  reused : int;  (** goals already satisfied by the resumed file *)
  failed : int;  (** goals with no circuit at any tier *)
  reproved : int;
      (** degraded records upgraded by the [prove] re-attack pass *)
  wall_s : float;
}

(** [build ~path goals] enumerates [goals] on [domains] workers
    ({!Mm_engine.Pool}) in chunks, flushing the artifact atomically after
    every chunk — an interrupted build loses at most one chunk and
    [~resume:true] (the default) continues from the last flushed record,
    also upgrading records of a lower-effort earlier build. [effort] is
    the tier (1..3, default 2); [timeout_per_call] the tier-2 SAT budget
    (tier 3 runs 4×). [progress] receives one human line per chunk.

    [prove] (a proof-orchestrator factory, same closure shape as
    {!Mm_engine.Engine.config}) enables a re-attack pass after the main
    sweep: every goal still covered only by a degraded record — tier-1
    fallback or missing proofs for the requested effort — is re-solved
    once through the orchestrator (sequentially; each call parallelizes
    internally over the pool), and an upgraded record replaces the
    degraded one, counted in [reproved]. *)
val build :
  ?effort:int ->
  ?domains:int ->
  ?timeout_per_call:float ->
  ?resume:bool ->
  ?progress:(string -> unit) ->
  ?prove:
    (Spec.t -> timeout:float -> Encode.config -> Mm_core.Synth.attempt) ->
  path:string ->
  goal list ->
  (build_stats, error) result

(** {2 Offline inspection} *)

type file_info = {
  i_version : int;
  i_records : int;
  i_bytes : int;
  i_by_arity : (int * int) list;  (** arity → records, ascending *)
  i_by_mode : (mode * int) list;
  i_by_effort : (int * int) list;  (** effort tier → records *)
  i_rops_exact : int;
  i_both_exact : int;
  i_certificates : int;  (** total stored UNSAT certificates *)
  i_damage : (int * bool) option;
      (** [(dropped, torn)] when the file is damaged — {!info} is
          tolerant and still summarizes the readable records *)
}

val info : string -> (file_info, error) result

(** Deep re-verification for [mmsynth atlas verify]: header, checksums
    and framing, then every record re-simulated — the circuit must
    realize its stored target on all rows, the stored metrics must match
    the circuit, R-only records must be legless. [Ok n] verified [n]
    records; [Error issues] lists every problem found (the CLI exits
    nonzero). *)
type issue =
  | File_error of error  (** unreadable header, or damaged records *)
  | Wrong_rows of { key : string; row : int }
  | Metric_mismatch of { key : string; field : string; stored : int; actual : int }
  | Malformed of { key : string; what : string }

val pp_issue : Format.formatter -> issue -> unit
val verify : string -> (int, issue list) result
