(* Experiment harness: one sub-command per table/figure of the paper, plus
   ablations and a Bechamel micro-benchmark suite. Running with no argument
   executes every reproduction in sequence. See DESIGN.md for the index. *)

module Tt = Mm_boolfun.Truth_table
module Literal = Mm_boolfun.Literal
module Spec = Mm_boolfun.Spec
module Arith = Mm_boolfun.Arith
module Gf = Mm_boolfun.Gf
module C = Mm_core.Circuit
module E = Mm_core.Encode
module Synth = Mm_core.Synth
module U = Mm_core.Universality
module Vop = Mm_core.Vop
module Baseline = Mm_core.Baseline
module Metrics = Mm_core.Metrics
module Reference = Mm_core.Reference
module Schedule = Mm_core.Schedule
module Reliability = Mm_core.Reliability
module Table = Mm_report.Table
module Variation = Mm_device.Variation
module Xbar = Mm_core.Xbar_schedule
module Heuristic = Mm_core.Heuristic

let section title = Printf.printf "\n=== %s ===\n\n%!" title

let human n =
  if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.1fK" (float_of_int n /. 1e3)
  else string_of_int n

let verdict_string = function
  | Synth.Sat _ -> "SAT"
  | Synth.Unsat -> "UNSAT"
  | Synth.Timeout -> "timeout"

(* ------------------------------------------------------------------ *)
(* Table I: V-op behaviour of a single device, logical and electrical  *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I: voltage-input behaviour V-op(s, TE, BE)";
  let t = Table.create [ "s"; "TE"; "BE"; "next s (model)"; "next s (simulator)" ] in
  let params = Mm_device.Device.default_params in
  List.iter
    (fun (s, te, be, next) ->
      let d = Mm_device.Device.create ~rng:(Mm_device.Rng.create 1) params in
      Mm_device.Device.set_state d s;
      let pulse b = if b then params.Mm_device.Device.v_write else 0.0 in
      ignore (Mm_device.Device.apply d ~v_te:(pulse te) ~v_be:(pulse be));
      let electrical = Mm_device.Device.state d in
      let b x = if x then "1" else "0" in
      Table.add_row t [ b s; b te; b be; b next; b electrical ];
      assert (electrical = next))
    Vop.table1;
  Table.print t;
  Printf.printf "\nAll 8 rows agree between the logical model and the electrical simulator.\n"

(* ------------------------------------------------------------------ *)
(* Table II: AND4/NAND4/OR4/NOR4 with V-ops only on a shared-BE array   *)
(* ------------------------------------------------------------------ *)

let print_vleg_table ?names c =
  let names =
    match names with
    | Some n -> n
    | None ->
      (* label each leg by the outputs that tap it *)
      let output_names = [| "AND4"; "NAND4"; "OR4"; "NOR4" |] in
      Array.init (C.n_legs c) (fun l ->
          let tapped =
            List.filteri (fun _ _ -> true)
              (List.concat
                 (List.mapi
                    (fun o src ->
                      match src with
                      | C.From_leg l' when l' = l -> [ output_names.(o) ]
                      | C.From_vop (l', _) when l' = l -> [ output_names.(o) ]
                      | C.From_leg _ | C.From_vop _ | C.From_rop _
                      | C.From_literal _ -> [])
                    (Array.to_list c.C.outputs)))
          in
          match tapped with
          | [] -> Printf.sprintf "leg %d" (l + 1)
          | l -> String.concat "/" l)
  in
  let t =
    Table.create
      ([ "step" ]
      @ Array.to_list (Array.map (fun n -> "TE " ^ n) names)
      @ [ "shared BE" ])
  in
  for s = 0 to C.steps_per_leg c - 1 do
    Table.add_row t
      ([ string_of_int (s + 1) ]
      @ List.init (C.n_legs c) (fun l -> Literal.to_string c.C.legs.(l).(s).C.te)
      @ [ Literal.to_string c.C.legs.(0).(s).C.be ])
  done;
  Table.print t;
  print_newline ();
  let st = Table.create ([ "state" ] @ Array.to_list names) in
  for s = 0 to C.steps_per_leg c - 1 do
    Table.add_row st
      ([ Printf.sprintf "s%d" (s + 1) ]
      @ List.init (C.n_legs c) (fun l -> Tt.to_string (C.leg_value c ~leg:l ~step:s)))
  done;
  Table.print st

let table2 ~budget () =
  section "Table II: 4-input AND/NAND/OR/NOR by V-ops only (shared BE)";
  Printf.printf "Reference schedule transcribed from the paper:\n\n";
  let ref_c = Reference.table2_circuit () in
  print_vleg_table ~names:[| "AND4"; "NAND4"; "OR4"; "NOR4" |] ref_c;
  (match C.realizes ref_c Arith.table2_spec with
   | Ok () -> Printf.printf "\nReference schedule verified on all 16 rows.\n"
   | Error row -> Printf.printf "\nREFERENCE WRONG on row %d!\n" row);
  Printf.printf
    "\nRe-synthesizing the same 4-output function from scratch (N_R=0, 4 legs, 5 steps):\n%!";
  let cfg = E.config ~n_legs:4 ~steps_per_leg:5 ~n_rops:0 () in
  let a = Synth.solve_instance ~timeout:budget cfg Arith.table2_spec in
  Printf.printf "  %s in %.1fs (%d vars, %d clauses)\n" (verdict_string a.Synth.verdict)
    a.Synth.time_s a.Synth.vars a.Synth.clauses;
  match a.Synth.verdict with
  | Synth.Sat c ->
    print_newline ();
    print_vleg_table c;
    let plan = Schedule.plan c in
    let failures = Schedule.verify plan Arith.table2_spec in
    Printf.printf "\nSynthesized schedule on the electrical simulator: %d failing rows.\n"
      (List.length failures)
  | Synth.Unsat | Synth.Timeout -> ()

(* ------------------------------------------------------------------ *)
(* Table III: universality counts                                      *)
(* ------------------------------------------------------------------ *)

let table3 ~full () =
  section "Table III: numbers of realizable 3- and 4-input functions";
  if not full then
    Printf.printf
      "(the n=4 cell of row (0,0,2) takes ~40s and is skipped; pass --full to include it)\n\n";
  let t =
    Table.create
      [ "k_pre"; "k_post"; "k_TEBE"; "N3"; "N3 paper"; "N4"; "N4 paper"; "match" ]
  in
  List.iter
    (fun ((k_pre, k_post, k_tebe) as row) ->
      let e3, e4 = U.paper_expected row in
      let n3 = U.count ~n:3 ~k_pre ~k_post ~k_tebe in
      let skip_n4 = (not full) && row = (0, 0, 2) in
      let n4 = if skip_n4 then -1 else U.count ~n:4 ~k_pre ~k_post ~k_tebe in
      Table.add_row t
        [
          string_of_int k_pre;
          string_of_int k_post;
          string_of_int k_tebe;
          string_of_int n3;
          string_of_int e3;
          (if skip_n4 then "(skipped)" else string_of_int n4);
          string_of_int e4;
          (if n3 = e3 && (skip_n4 || n4 = e4) then "yes" else "NO");
        ])
    U.paper_rows;
  Table.print t;
  Printf.printf "\nTotal functions: 256 (n=3), 65536 (n=4).\n"

(* ------------------------------------------------------------------ *)
(* Table IV: optimal synthesis, MM vs R-only                           *)
(* ------------------------------------------------------------------ *)

let attempt_row ~(paper : Paper_data.row) (a : Synth.attempt) =
  let measured_dev, measured_steps =
    match a.Synth.verdict with
    | Synth.Sat c -> (string_of_int (C.n_devices c), string_of_int (C.n_steps c))
    | Synth.Unsat | Synth.Timeout -> ("-", "-")
  in
  [
    paper.Paper_data.circuit;
    (match paper.Paper_data.mode with Paper_data.Mm -> "MM" | Paper_data.R_only -> "R-only");
    verdict_string a.Synth.verdict;
    string_of_int a.Synth.n_rops;
    string_of_int a.Synth.n_legs;
    string_of_int a.Synth.steps_per_leg;
    measured_steps;
    string_of_int paper.Paper_data.n_steps;
    measured_dev;
    string_of_int paper.Paper_data.n_dev;
    human a.Synth.vars;
    paper.Paper_data.vars;
    human a.Synth.clauses;
    paper.Paper_data.clauses;
    Printf.sprintf "%.1f" a.Synth.time_s;
    paper.Paper_data.time_s;
  ]

let table4 ~budget () =
  section "Table IV: optimal synthesis results (MM and R-only), paper vs measured";
  Printf.printf
    "Paper dimensions are re-solved with this repository's own CDCL solver\n\
     (the paper used SLIME 5 on a 16-core Ryzen 9; base budget here: %gs per call;\n\
     rows exceeding their budget report 'timeout', akin to the paper's '<=' rows).\n\
     Taps follow the paper's Eq. 7 (Any_vop).\n\n%!"
    budget;
  let t =
    Table.create
      [
        "circuit"; "mode"; "verdict"; "N_R"; "N_L"; "N_VS";
        "N_St"; "paper"; "N_Dev"; "paper";
        "vars"; "paper"; "clauses"; "paper"; "T[s]"; "paper";
      ]
  in
  let solve_paper_row (row : Paper_data.row) =
    let spec = Paper_data.spec_of_circuit row.Paper_data.circuit in
    (* generous budgets only where a from-scratch single-core solver has a
       realistic shot; the rest still reports exact formula sizes *)
    let row_budget =
      match (row.Paper_data.circuit, row.Paper_data.mode) with
      | "1-bit adder", _ -> budget
      | "GF(2^2) multiplier", Paper_data.Mm -> 3.0 *. budget
      | "GF(2^2) multiplier", Paper_data.R_only -> budget
      | _ -> budget /. 4.
    in
    let cfg =
      match row.Paper_data.mode with
      | Paper_data.Mm ->
        E.config ~taps:E.Any_vop ~n_legs:row.Paper_data.n_legs
          ~steps_per_leg:row.Paper_data.n_vs ~n_rops:row.Paper_data.n_rops ()
      | Paper_data.R_only ->
        E.config ~n_legs:0 ~steps_per_leg:0 ~n_rops:row.Paper_data.n_rops ()
    in
    Printf.printf "  solving %-20s %-7s (budget %4.0fs)...\n%!"
      row.Paper_data.circuit
      (match row.Paper_data.mode with Paper_data.Mm -> "MM" | _ -> "R-only")
      row_budget;
    let a = Synth.solve_instance ~timeout:row_budget cfg spec in
    Table.add_row t (attempt_row ~paper:row a);
    match a.Synth.verdict with
    | Synth.Sat c ->
      let plan = Schedule.plan c in
      let failures = Schedule.verify plan spec in
      if failures <> [] then
        Printf.printf "!! %s: %d simulator failures\n" row.Paper_data.circuit
          (List.length failures)
    | Synth.Unsat ->
      Printf.printf "!! %s: UNSAT at the paper's dimensions\n" row.Paper_data.circuit
    | Synth.Timeout -> ()
  in
  List.iter solve_paper_row Paper_data.table4;
  print_newline ();
  Table.print t;
  Printf.printf "\nOptimality certificates (UNSAT proofs for smaller budgets):\n%!";
  let cert name cfg spec =
    let a = Synth.solve_instance ~timeout:budget cfg spec in
    Printf.printf "  %-48s %-7s (%.1fs)\n%!" name (verdict_string a.Synth.verdict)
      a.Synth.time_s
  in
  let fa = Arith.adder_bits 1 in
  cert "1-bit adder, N_R=1 (paper: UNSAT)"
    (E.config ~taps:E.Any_vop ~n_legs:3 ~steps_per_leg:3 ~n_rops:1 ())
    fa;
  cert "1-bit adder, N_R=2, N_VS=2 (paper: UNSAT)"
    (E.config ~taps:E.Any_vop ~n_legs:3 ~steps_per_leg:2 ~n_rops:2 ())
    fa;
  cert "GF(2^2) multiplier, N_R=3 (paper: UNSAT)"
    (E.config ~taps:E.Any_vop ~n_legs:5 ~steps_per_leg:3 ~n_rops:3 ())
    (Gf.mul_spec 2);
  Printf.printf
    "\nTap-discipline ablation (reproduction finding): the paper's Eq. 7 lets\n\
     R-ops tap one leg at several time points; with physically schedulable\n\
     leg-final taps the 1-bit adder needs one extra leg:\n%!";
  cert "1-bit adder MM, Final_only taps, N_L=3"
    (E.config ~taps:E.Final_only ~n_legs:3 ~steps_per_leg:3 ~n_rops:2 ())
    fa;
  cert "1-bit adder MM, Final_only taps, N_L=4"
    (E.config ~taps:E.Final_only ~n_legs:4 ~steps_per_leg:3 ~n_rops:2 ())
    fa

(* ------------------------------------------------------------------ *)
(* Table V: adders vs literature                                       *)
(* ------------------------------------------------------------------ *)

let table5 () =
  section "Table V: MM adders vs published adder designs";
  let t =
    Table.create
      [ "design"; "n=1 N_St"; "n=1 N_Dev"; "n=2 N_St"; "n=2 N_Dev";
        "n=3 N_St"; "n=3 N_Dev" ]
  in
  let cell source bits pick =
    match
      List.find_opt
        (fun e -> e.Metrics.source = source && e.Metrics.bits = bits)
        Metrics.literature_adders
    with
    | Some e -> string_of_int (pick e)
    | None -> "-"
  in
  List.iter
    (fun source ->
      Table.add_row t
        [
          source;
          cell source 1 (fun e -> e.Metrics.n_st);
          cell source 1 (fun e -> e.Metrics.n_dev);
          cell source 2 (fun e -> e.Metrics.n_st);
          cell source 2 (fun e -> e.Metrics.n_dev);
          cell source 3 (fun e -> e.Metrics.n_st);
          cell source 3 (fun e -> e.Metrics.n_dev);
        ])
    [ "[16]"; "[17]"; "[18]"; "[19]"; "[20]" ];
  Table.add_separator t;
  let ours bits =
    let row =
      List.find
        (fun r ->
          r.Paper_data.mode = Paper_data.Mm
          && r.Paper_data.circuit = Printf.sprintf "%d-bit adder" bits)
        Paper_data.table4
    in
    ( Metrics.steps ~n_vs:row.Paper_data.n_vs ~n_rops:row.Paper_data.n_rops,
      row.Paper_data.n_dev )
  in
  let s1, d1 = ours 1 and s2, d2 = ours 2 and s3, d3 = ours 3 in
  Table.add_row t
    [
      "Ours (MM)";
      string_of_int s1; string_of_int d1;
      string_of_int s2; string_of_int d2;
      string_of_int s3; string_of_int d3;
    ];
  Table.print t;
  Printf.printf
    "\n[18]/[20] use IMPLY gates needing fewer devices per gate than the\n\
     3-device MAGIC NOR R-op, as the paper notes.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 1: the GF(2^2) multiplier circuit                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Fig. 1: mixed-mode GF(2^2) multiplier (18 V-ops, 4 R-ops, 10 devices)";
  let c = Reference.gf4_mul_circuit () in
  Format.printf "%a@." C.pp c;
  Printf.printf
    "\nMetrics: N_V=%d, N_R=%d, N_L=%d, N_VS=%d, N_St=%d, N_Dev=%d (paper: 18/4/6/3/7/10)\n"
    (C.n_vops c) (C.n_rops c) (C.n_legs c) (C.steps_per_leg c) (C.n_steps c)
    (C.n_devices c);
  (match C.realizes c (Gf.mul_spec 2) with
   | Ok () -> Printf.printf "Verified against GF(2^2) multiplication on all 16 inputs.\n"
   | Error row -> Printf.printf "WRONG on row %d!\n" row);
  let dot_path = "gf4_mul.dot" in
  let oc = open_out dot_path in
  output_string oc (Mm_core.Emit.to_dot c);
  close_out oc;
  Printf.printf "Graphviz netlist written to %s\n" dot_path

(* ------------------------------------------------------------------ *)
(* Fig. 2: electrical trace for input 1011                             *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Fig. 2: electrical execution of the GF(2^2) multiplier, input x=1011";
  let c = Reference.gf4_mul_circuit () in
  let plan = Schedule.plan c in
  let r = Schedule.execute plan ~input:0b1011 () in
  Format.printf "%a@." Mm_device.Waveform.pp r.Schedule.waveform;
  Printf.printf
    "\nReadout: out1 = %d, out2 = %d over %d cycles on %d cells\n\
     (paper measurement: out1 = 0, out2 = 1, 9 cycles incl. readout, 10 cells).\n"
    (if r.Schedule.outputs.(0) then 1 else 0)
    (if r.Schedule.outputs.(1) then 1 else 0)
    r.Schedule.cycles (Schedule.n_cells plan);
  let failures = Schedule.verify plan (Gf.mul_spec 2) in
  Printf.printf "Full input sweep on the simulator: %d/16 inputs correct.\n"
    (16 - List.length failures)

(* ------------------------------------------------------------------ *)
(* Ablation A: reliability under variation                             *)
(* ------------------------------------------------------------------ *)

let reliability ~trials () =
  section "Ablation A: MM vs R-only error rate under D2D/C2C variation";
  let spec = Gf.mul_spec 2 in
  let mm = Reference.gf4_mul_circuit () in
  let r_only = Baseline.nor_network spec in
  Printf.printf
    "MM: %d R-ops (cascade depth %d); R-only baseline: %d R-ops (depth %d).\n\
     Monte Carlo: %d trials x 16 inputs per point, deterministic seed.\n\n%!"
    (C.n_rops mm)
    (Reliability.rop_depth mm)
    (C.n_rops r_only)
    (Reliability.rop_depth r_only)
    trials;
  let study = Reliability.run spec ~mm ~r_only ~trials ~seed:2025 in
  let t = Table.create [ "variation"; "sigma"; "MM error"; "R-only error" ] in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.Reliability.variation.Variation.label;
          Printf.sprintf "%.2f" p.Reliability.variation.Variation.sigma_c2c;
          Printf.sprintf "%.4f" p.Reliability.mm_error;
          Printf.sprintf "%.4f" p.Reliability.r_only_error;
        ])
    study.Reliability.points;
  Table.print t;
  Printf.printf
    "\nExpected shape (paper, Sections II-B/III): both are clean when ideal;\n\
     as variation grows the deep R-only cascade degrades faster than MM.\n"

(* ------------------------------------------------------------------ *)
(* Ablation B: direct (Eqs. 4-10) vs compact encoding                  *)
(* ------------------------------------------------------------------ *)

let encodings ~budget () =
  section "Ablation B: paper-literal (direct) vs compact encoding of Phi";
  let t =
    Table.create
      [ "circuit"; "mode"; "direct vars"; "direct clauses"; "compact vars";
        "compact clauses"; "paper vars"; "paper clauses" ]
  in
  List.iter
    (fun (row : Paper_data.row) ->
      let spec = Paper_data.spec_of_circuit row.Paper_data.circuit in
      let cfg style =
        match row.Paper_data.mode with
        | Paper_data.Mm ->
          E.config ~style ~taps:E.Any_vop ~n_legs:row.Paper_data.n_legs
            ~steps_per_leg:row.Paper_data.n_vs ~n_rops:row.Paper_data.n_rops ()
        | Paper_data.R_only ->
          E.config ~style ~n_legs:0 ~steps_per_leg:0 ~n_rops:row.Paper_data.n_rops ()
      in
      let dv, dc = E.size (cfg E.Direct) spec in
      let cv, cc = E.size (cfg E.Compact) spec in
      Table.add_row t
        [
          row.Paper_data.circuit;
          (match row.Paper_data.mode with Paper_data.Mm -> "MM" | _ -> "R-only");
          human dv; human dc; human cv; human cc;
          row.Paper_data.vars; row.Paper_data.clauses;
        ])
    Paper_data.table4;
  Table.print t;
  Printf.printf "\nSolving the 1-bit adder MM instance with both encodings:\n%!";
  let fa = Arith.adder_bits 1 in
  List.iter
    (fun (label, style) ->
      let cfg =
        E.config ~style ~taps:E.Any_vop ~n_legs:3 ~steps_per_leg:3 ~n_rops:2 ()
      in
      let a = Synth.solve_instance ~timeout:budget cfg fa in
      Printf.printf "  %-8s %-7s in %6.2fs (%d vars, %d clauses)\n%!" label
        (verdict_string a.Synth.verdict) a.Synth.time_s a.Synth.vars a.Synth.clauses)
    [ ("direct", E.Direct); ("compact", E.Compact) ]

(* ------------------------------------------------------------------ *)
(* Ablation C: symmetry breaking                                       *)
(* ------------------------------------------------------------------ *)

let symmetry ~budget () =
  section "Ablation C: effect of symmetry breaking on solve time";
  let cases =
    [
      ( "1-bit adder MM (SAT)",
        Arith.adder_bits 1,
        fun sym ->
          E.config ~symmetry_breaking:sym ~taps:E.Any_vop ~n_legs:3
            ~steps_per_leg:3 ~n_rops:2 () );
      ( "1-bit adder N_R=1 (UNSAT)",
        Arith.adder_bits 1,
        fun sym ->
          E.config ~symmetry_breaking:sym ~taps:E.Any_vop ~n_legs:3
            ~steps_per_leg:3 ~n_rops:1 () );
      ( "GF(2^2) mult N_R=4 (SAT)",
        Gf.mul_spec 2,
        fun sym ->
          E.config ~symmetry_breaking:sym ~taps:E.Any_vop ~n_legs:6
            ~steps_per_leg:3 ~n_rops:4 () );
    ]
  in
  let t =
    Table.create [ "instance"; "symmetry"; "verdict"; "time [s]"; "conflicts" ]
  in
  List.iter
    (fun (name, spec, cfg_of) ->
      List.iter
        (fun sym ->
          let a = Synth.solve_instance ~timeout:budget (cfg_of sym) spec in
          Table.add_row t
            [
              name;
              (if sym then "on" else "off");
              verdict_string a.Synth.verdict;
              Printf.sprintf "%.2f" a.Synth.time_s;
              string_of_int a.Synth.solver_stats.Mm_sat.Solver.conflicts;
            ])
        [ true; false ])
    cases;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Extension D: crossbar scheduling (the paper's future work)          *)
(* ------------------------------------------------------------------ *)

let crossbar () =
  section "Extension D: 1D line array vs 2D crossbar latency (parallel R-ops)";
  Printf.printf
    "The paper's conclusions point to crossbars for parallel R-ops. Here the\n\
     same circuits run on both substrates; crossbar latency is\n\
     N_VS + 2*depth + N_O (one transfer + one parallel-NOR cycle per level).\n\n";
  let t =
    Table.create
      [ "circuit"; "N_R"; "R depth"; "line cycles"; "crossbar cycles"; "verified" ]
  in
  let case name circuit spec =
    let plan = Xbar.plan circuit in
    let line, xbar = Xbar.latency_comparison circuit in
    let failures = Xbar.verify plan spec in
    Table.add_row t
      [
        name;
        string_of_int (C.n_rops circuit);
        string_of_int (Xbar.depth plan);
        string_of_int line;
        string_of_int xbar;
        (if failures = [] then "yes" else "NO");
      ]
  in
  let gf_spec = Gf.mul_spec 2 in
  case "GF(2^2) mult, MM" (Reference.gf4_mul_circuit ()) gf_spec;
  case "GF(2^2) mult, R-only" (Baseline.nor_network gf_spec) gf_spec;
  let fa = Arith.adder_bits 1 in
  case "full adder, R-only" (Baseline.nor_network fa) fa;
  let cmp = Arith.comparator 2 in
  case "2-bit comparator, R-only" (Baseline.nor_network cmp) cmp;
  Table.print t;
  Printf.printf
    "\nShape: MM circuits are already shallow, so the crossbar gains little;\n\
     deep R-only NOR networks parallelize well — matching the paper's remark\n\
     that crossbars mainly help stateful-heavy designs.\n"

(* ------------------------------------------------------------------ *)
(* Extension E: scalable heuristic synthesis (the paper's future work) *)
(* ------------------------------------------------------------------ *)

let heuristic_bench () =
  section "Extension E: heuristic synthesis for larger functions";
  Printf.printf
    "Shannon decomposition to <=4-input blocks, each block synthesized\n\
     optimally by SAT (cached), recombined with 3-NOR multiplexers; the\n\
     QMC->NOR two-level baseline is the comparison point.\n\n%!";
  let t =
    Table.create
      [ "function"; "n"; "heuristic NORs"; "baseline NORs"; "blocks";
        "exact"; "cache hits"; "time [s]"; "verified" ]
  in
  let case spec =
    let t0 = Unix.gettimeofday () in
    let c, stats = Heuristic.synthesize ~timeout_per_block:10. spec in
    let dt = Unix.gettimeofday () -. t0 in
    let plan = Schedule.plan c in
    let failures = Schedule.verify plan spec in
    Table.add_row t
      [
        Spec.name spec;
        string_of_int (Spec.arity spec);
        string_of_int (C.n_rops c);
        string_of_int (Baseline.nor_count spec);
        string_of_int stats.Heuristic.blocks;
        string_of_int stats.Heuristic.exact_blocks;
        string_of_int stats.Heuristic.cache_hits;
        Printf.sprintf "%.1f" dt;
        (if failures = [] then "yes" else "NO");
      ]
  in
  case (Arith.adder_bits 2);
  case (Gf.inv_spec 4);
  case (Arith.multiplier 2);
  case (Arith.majority 5);
  case (Arith.comparator 3);
  Table.print t;
  Printf.printf
    "\nShape: block-exact synthesis beats the two-level baseline by a wide\n\
     margin while scaling past the reach of monolithic optimal SAT calls.\n"

(* ------------------------------------------------------------------ *)
(* Map: cut-based technology mapping onto SAT-optimal block libraries  *)
(* ------------------------------------------------------------------ *)

let map_bench ?(budget = 0.5) () =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Stitch = Mm_map.Stitch in
  section "Map: AIG cuts + SAT-optimal block library vs heuristic vs baseline";
  Printf.printf
    "The mapper covers an AND-inverter graph with width-<=4 cuts, prices\n\
     each cut by probing an NPN-canonicalized library of SAT-minimized\n\
     blocks, and stitches the chosen cover onto one verified line-array\n\
     schedule. Cost = V-steps + R-ops of the whole schedule; Shannon\n\
     heuristic and QMC->NOR baseline are the comparison points.\n\n%!";
  let t =
    Table.create
      [ "function"; "n"; "map V+R"; "heur V+R"; "base V+R"; "blocks";
        "optimal"; "exact"; "time [s]"; "verified" ]
  in
  (* one in-memory library cache shared by all specs: recurring cut classes
     (majority-of-3, carry chains, xor trees) are probed once *)
  let cache = Cache.create () in
  let cfg =
    Engine.config ~timeout_per_call:budget ~max_rops:8 ~domains:1
      ~taps:E.Final_only ~cache ()
  in
  let rows = ref [] in
  let case spec =
    let t0 = Unix.gettimeofday () in
    let r = Stitch.compile cfg spec in
    let dt = Unix.gettimeofday () -. t0 in
    let st = r.Stitch.stitched in
    let c = st.Stitch.circuit in
    let plan = Schedule.plan c in
    let failures = Schedule.verify plan spec in
    let hc, _ = Heuristic.synthesize ~timeout_per_block:budget spec in
    let bc = Baseline.nor_network spec in
    let blocks = List.length st.Stitch.placed in
    let optimal =
      List.length (List.filter (fun p -> p.Stitch.optimal) st.Stitch.placed)
    in
    let exact =
      List.length (List.filter (fun p -> p.Stitch.exact) st.Stitch.placed)
    in
    Table.add_row t
      [
        Spec.name spec;
        string_of_int (Spec.arity spec);
        Printf.sprintf "%d+%d=%d" (C.steps_per_leg c) (C.n_rops c) (C.n_steps c);
        string_of_int (C.n_steps hc);
        string_of_int (C.n_steps bc);
        string_of_int blocks;
        string_of_int optimal;
        string_of_int exact;
        Printf.sprintf "%.1f" dt;
        (if failures = [] then "yes" else "NO");
      ];
    rows :=
      Printf.sprintf
        "    { \"function\": %S, \"n\": %d, \"mapped_v_steps\": %d,\n\
        \      \"mapped_rops\": %d, \"mapped_total\": %d, \"blocks\": %d,\n\
        \      \"optimal_blocks\": %d, \"exact_blocks\": %d,\n\
        \      \"heuristic_total\": %d, \"baseline_total\": %d,\n\
        \      \"time_s\": %.2f, \"verified\": %b }"
        (Spec.name spec) (Spec.arity spec) (C.steps_per_leg c) (C.n_rops c)
        (C.n_steps c) blocks optimal exact (C.n_steps hc) (C.n_steps bc) dt
        (failures = [])
      :: !rows
  in
  case (Arith.adder_bits 2);
  case (Arith.adder_bits 3);
  case (Arith.adder_bits 4);
  case (Arith.majority 5);
  case (Arith.majority 6);
  case (Arith.majority 7);
  case (Arith.parity 5);
  case (Arith.parity 6);
  case (Arith.parity 7);
  case (Arith.parity 8);
  Table.print t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"technology mapping vs heuristic vs QMC->NOR \
       baseline\",\n\
      \  \"host_cores\": %d,\n\
      \  \"probe_budget_s\": %.2f,\n\
      \  \"resyn_passes\": 0,\n\
      \  \"cost_metric\": \"V-steps per leg + R-ops (total schedule \
       steps)\",\n\
      \  \"results\": [\n%s\n  ]\n\
       }"
      (Domain.recommended_domain_count ())
      budget
      (String.concat ",\n" (List.rev !rows))
  in
  let oc = open_out "BENCH_map.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nShape: wide xor-heavy functions (parity) gain most — V-op blocks\n\
     absorb whole sub-trees the two-level baseline pays per-minterm for;\n\
     written to BENCH_map.json\n"

(* ------------------------------------------------------------------ *)
(* Xbar: row-parallel crossbar backend vs the serial 1D schedule       *)
(* ------------------------------------------------------------------ *)

let xbar_bench ?(budget = 0.5) ?(rows = 16) ?(ports = 4) () =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Stitch = Mm_map.Stitch in
  let module Mapper = Mm_map.Mapper in
  let module Xsched = Mm_map.Xsched in
  let module Xstitch = Mm_map.Xstitch in
  section "Xbar: row-parallel placement + cycle-minimizing scheduling";
  Printf.printf
    "Each workload is compiled for both backends: the 1D line array\n\
     (steps = V-steps + R-ops, depth-insensitive) and a %d-row crossbar\n\
     where independent MAGIC NORs share a cycle, identical TE patterns\n\
     share a broadcast V-cycle, and cross-row operands pay explicit\n\
     peripheral transfer cycles (%d ports). The crossbar pipeline maps\n\
     from a depth-balanced AIG (linear subfunctions become XOR trees)\n\
     because cycles track the critical path. Every schedule is executed\n\
     on the crossbar simulator for all input rows.\n\n%!"
    rows ports;
  let t =
    Table.create
      [ "function"; "n"; "1D steps"; "xbar cycles"; "V/R/T"; "xfers";
        "depth"; "rows"; "polish"; "time [s]"; "verified" ]
  in
  let cache = Cache.create () in
  let cfg =
    Engine.config ~timeout_per_call:budget ~max_rops:8 ~domains:1
      ~taps:E.Final_only ~cache ()
  in
  let results = ref [] and wins = ref 0 and total = ref 0 in
  let case spec =
    let t0 = Unix.gettimeofday () in
    let st_1d = Stitch.compile cfg spec in
    let r = Xstitch.compile ~rows ~ports cfg spec in
    let dt = Unix.gettimeofday () -. t0 in
    let st = r.Xstitch.stitch in
    let steps_1d = C.n_steps st_1d.Stitch.stitched.Stitch.circuit in
    let sc = r.Xstitch.sched in
    incr total;
    if r.Xstitch.cycles < steps_1d then incr wins;
    Table.add_row t
      [
        Spec.name spec;
        string_of_int (Spec.arity spec);
        string_of_int steps_1d;
        string_of_int r.Xstitch.cycles;
        Printf.sprintf "%d/%d/%d" sc.Xsched.v_cycles sc.Xsched.r_cycles
          sc.Xsched.t_cycles;
        string_of_int r.Xstitch.transfers;
        string_of_int st.Stitch.dag.Mapper.depth;
        string_of_int r.Xstitch.rows_used;
        Printf.sprintf "-%d" sc.Xsched.polish_gain;
        Printf.sprintf "%.1f" dt;
        (if r.Xstitch.verified then "yes" else "NO");
      ];
    results :=
      Printf.sprintf
        "    { \"function\": %S, \"n\": %d, \"steps_1d\": %d,\n\
        \      \"cycles\": %d, \"v_cycles\": %d, \"r_cycles\": %d,\n\
        \      \"t_cycles\": %d, \"transfers\": %d, \"readout\": %d,\n\
        \      \"blocks\": %d, \"block_depth\": %d, \"rows_used\": %d,\n\
        \      \"cols_used\": %d, \"polish_gain\": %d, \"time_s\": %.2f,\n\
        \      \"faster_than_1d\": %b, \"verified\": %b }"
        (Spec.name spec) (Spec.arity spec) steps_1d r.Xstitch.cycles
        sc.Xsched.v_cycles sc.Xsched.r_cycles sc.Xsched.t_cycles
        r.Xstitch.transfers r.Xstitch.readout
        (Array.length st.Stitch.dag.Mapper.blocks)
        st.Stitch.dag.Mapper.depth r.Xstitch.rows_used r.Xstitch.cols_used
        sc.Xsched.polish_gain dt
        (r.Xstitch.cycles < steps_1d)
        r.Xstitch.verified
      :: !results
  in
  case (Arith.adder_bits 2);
  case (Arith.adder_bits 3);
  case (Arith.adder_bits 4);
  case (Arith.majority 5);
  case (Arith.majority 6);
  case (Arith.majority 7);
  case (Arith.parity 5);
  case (Arith.parity 6);
  case (Arith.parity 7);
  case (Arith.parity 8);
  Table.print t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"crossbar row-parallel scheduling (balanced-AIG \
       cover) vs serial 1D schedule\",\n\
      \  \"host_cores\": %d,\n\
      \  \"probe_budget_s\": %.2f,\n\
      \  \"resyn_passes\": 0,\n\
      \  \"rows\": %d,\n\
      \  \"ports\": %d,\n\
      \  \"cycle_metric\": \"V broadcast cycles + parallel NOR cycles + \
       transfer cycles (readout reported separately, matching the 1D step \
       metric)\",\n\
      \  \"faster_than_1d\": %d,\n\
      \  \"workloads\": %d,\n\
      \  \"results\": [\n%s\n  ]\n\
       }"
      (Domain.recommended_domain_count ())
      budget rows ports !wins !total
      (String.concat ",\n" (List.rev !results))
  in
  let oc = open_out "BENCH_xbar.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nShape: %d/%d workloads need fewer crossbar cycles than 1D steps —\n\
     the R-op phase parallelizes across rows while placement affinity\n\
     keeps transfer cycles low; written to BENCH_xbar.json\n"
    !wins !total

(* ------------------------------------------------------------------ *)
(* Resyn: windowed SAT-sweeping resynthesis over stitched schedules    *)
(* ------------------------------------------------------------------ *)

let resyn_bench ?(budget = 0.5) ?(passes = 4) ?(rows = 16) ?(ports = 4) () =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Stitch = Mm_map.Stitch in
  let module Xstitch = Mm_map.Xstitch in
  let module Resyn = Mm_resyn.Resyn in
  section "Resyn: post-mapping resynthesis of stitched schedules";
  Printf.printf
    "Each workload is mapped and stitched, then re-optimized after the cut\n\
     boundaries are gone: semantic sweeping redirects R-ops that duplicate\n\
     an earlier signal, every legal window is re-synthesized exactly\n\
     (atlas-first) and spliced only when strictly cheaper AND re-verified,\n\
     and the shared-BE-rail schedule is compacted to the shortest common\n\
     supersequence of the legs' real-op rails. The crossbar schedule is\n\
     re-optimized at cover level (producer-into-consumer merges). The\n\
     gate: mapped+resyn must never exceed the Shannon heuristic.\n\n%!";
  let t =
    Table.create
      [ "function"; "n"; "map"; "resyn"; "heur"; "win a/t"; "merged"; "dead";
        "V saved"; "xbar cyc"; "time [s]"; "verified" ]
  in
  let cache = Cache.create () in
  let cfg =
    Engine.config ~timeout_per_call:budget ~max_rops:8 ~domains:1
      ~taps:E.Final_only ~cache ()
  in
  let results = ref [] and wins = ref 0 and total = ref 0 in
  let case spec =
    let t0 = Unix.gettimeofday () in
    let st = (Stitch.compile cfg spec).Stitch.stitched in
    let r = Resyn.optimize ~max_passes:passes cfg spec st.Stitch.circuit in
    let s = r.Resyn.stats in
    let c = r.Resyn.circuit in
    let plan = Schedule.plan c in
    let failures = Schedule.verify plan spec in
    let hc, _ = Heuristic.synthesize ~timeout_per_block:budget spec in
    let xr = Xstitch.compile ~rows ~ports cfg spec in
    let x = Resyn.optimize_xbar ~rows ~ports cfg spec xr in
    let xs = x.Resyn.xstats in
    let dt = Unix.gettimeofday () -. t0 in
    let gate = C.n_steps c <= C.n_steps hc in
    let ok =
      failures = [] && x.Resyn.result.Xstitch.verified
      && s.Resyn.steps_after <= s.Resyn.steps_before
      && xs.Resyn.cycles_after <= xs.Resyn.cycles_before
    in
    incr total;
    if gate && ok then incr wins;
    Table.add_row t
      [
        Spec.name spec;
        string_of_int (Spec.arity spec);
        string_of_int s.Resyn.steps_before;
        string_of_int s.Resyn.steps_after;
        string_of_int (C.n_steps hc);
        Printf.sprintf "%d/%d" s.Resyn.windows_accepted s.Resyn.windows_attempted;
        string_of_int s.Resyn.sweep_merged;
        string_of_int s.Resyn.dce_removed;
        string_of_int s.Resyn.v_steps_saved;
        Printf.sprintf "%d->%d" xs.Resyn.cycles_before xs.Resyn.cycles_after;
        Printf.sprintf "%.1f" dt;
        (if ok then "yes" else "NO");
      ];
    results :=
      Printf.sprintf
        "    { \"function\": %S, \"n\": %d, \"mapped_total\": %d,\n\
        \      \"resyn_total\": %d, \"heuristic_total\": %d,\n\
        \      \"windows_attempted\": %d, \"windows_accepted\": %d,\n\
        \      \"trivial_hits\": %d, \"atlas_hits\": %d, \"solver_hits\": %d,\n\
        \      \"sweep_merged\": %d, \"dce_removed\": %d, \"v_steps_saved\": %d,\n\
        \      \"passes\": %d, \"fixed_point\": %b,\n\
        \      \"xbar_cycles_before\": %d, \"xbar_cycles_after\": %d,\n\
        \      \"xbar_merges_accepted\": %d,\n\
        \      \"mapped_le_heuristic\": %b, \"time_s\": %.2f, \"verified\": %b }"
        (Spec.name spec) (Spec.arity spec) s.Resyn.steps_before
        s.Resyn.steps_after (C.n_steps hc) s.Resyn.windows_attempted
        s.Resyn.windows_accepted s.Resyn.trivial_hits s.Resyn.atlas_hits
        s.Resyn.solver_hits s.Resyn.sweep_merged s.Resyn.dce_removed
        s.Resyn.v_steps_saved s.Resyn.passes s.Resyn.fixed_point
        xs.Resyn.cycles_before xs.Resyn.cycles_after xs.Resyn.merges_accepted
        gate dt ok
      :: !results
  in
  case (Arith.adder_bits 2);
  case (Arith.adder_bits 3);
  case (Arith.adder_bits 4);
  case (Arith.majority 5);
  case (Arith.majority 6);
  case (Arith.majority 7);
  case (Arith.parity 5);
  case (Arith.parity 6);
  case (Arith.parity 7);
  case (Arith.parity 8);
  Table.print t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"post-mapping resynthesis (sweep + window rewrite + \
       leg compaction) vs Shannon heuristic\",\n\
      \  \"host_cores\": %d,\n\
      \  \"probe_budget_s\": %.2f,\n\
      \  \"resyn_passes\": %d,\n\
      \  \"rows\": %d,\n\
      \  \"ports\": %d,\n\
      \  \"cost_metric\": \"V-steps per leg + R-ops (total schedule \
       steps)\",\n\
      \  \"mapped_le_heuristic\": %d,\n\
      \  \"workloads\": %d,\n\
      \  \"results\": [\n%s\n  ]\n\
       }"
      (Domain.recommended_domain_count ())
      budget passes rows ports !wins !total
      (String.concat ",\n" (List.rev !results))
  in
  let oc = open_out "BENCH_resyn.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nShape: %d/%d workloads meet the mapped+resyn <= heuristic gate —\n\
     sweeps absorb cross-block duplication and SCS rail compaction\n\
     reclaims the stitcher's serialization padding; written to\n\
     BENCH_resyn.json\n"
    !wins !total

(* ------------------------------------------------------------------ *)
(* Engine: NPN-canonicalizing, cached, multicore batch synthesis       *)
(* ------------------------------------------------------------------ *)

let engine_bench () =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Pool = Mm_engine.Pool in
  section "Engine: batch synthesis over the full 3-input function space";
  let specs = Engine.all_functions ~arity:3 in
  let tmp suffix =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_engine_bench_%d_%s.cache" (Unix.getpid ()) suffix)
  in
  let cleanup = ref [] in
  let run ~label ~domains ~cache_path =
    let cache = Cache.create ~path:cache_path () in
    if not (List.mem cache_path !cleanup) then
      cleanup := cache_path :: !cleanup;
    let cfg =
      Engine.config ~timeout_per_call:30. ~domains ~cache ()
    in
    let results, s = Engine.run cfg specs in
    let bad =
      Array.fold_left
        (fun n r -> if r.Engine.error <> None then n + 1 else n)
        0 results
    in
    let line =
      Format.asprintf "%a" Engine.pp_summary s
      |> String.map (function '\n' -> ' ' | c -> c)
    in
    Printf.printf "%-22s %s%s\n%!" label line
      (if bad > 0 then Printf.sprintf "  (%d ERRORS)" bad else "");
    s
  in
  let cores = Domain.recommended_domain_count () in
  let domains = Pool.default_domains () in
  let seq = run ~label:"sequential, cold:" ~domains:1 ~cache_path:(tmp "seq") in
  let par =
    run ~label:(Printf.sprintf "%d domains, cold:" domains) ~domains
      ~cache_path:(tmp "par")
  in
  let warm =
    run ~label:(Printf.sprintf "%d domains, warm:" domains) ~domains
      ~cache_path:(tmp "par")
  in
  let speedup = if par.Engine.wall_s > 0. then seq.Engine.wall_s /. par.Engine.wall_s else 0. in
  let hit_rate (s : Engine.summary) =
    match s.Engine.cache with
    | Some c ->
      let probes = c.Cache.hits + c.Cache.misses + c.Cache.stale in
      if probes > 0 then float_of_int c.Cache.hits /. float_of_int probes
      else 0.
    | None -> 0.
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"all 256 3-input functions, minimize loop\",\n\
      \  \"host_cores\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"domains\": %d,\n\
      \  \"functions\": %d,\n\
      \  \"classes\": %d,\n\
      \  \"sequential_wall_s\": %.3f,\n\
      \  \"parallel_wall_s\": %.3f,\n\
      \  \"speedup_vs_sequential\": %.2f,\n\
      \  \"solves_per_s_sequential\": %.1f,\n\
      \  \"solves_per_s_parallel\": %.1f,\n\
      \  \"warm_wall_s\": %.3f,\n\
      \  \"warm_solves_per_s\": %.1f,\n\
      \  \"cold_cache_hit_rate\": %.3f,\n\
      \  \"warm_cache_hit_rate\": %.3f\n\
       }"
      cores cores domains seq.Engine.functions seq.Engine.classes
      seq.Engine.wall_s
      par.Engine.wall_s speedup seq.Engine.solves_per_s par.Engine.solves_per_s
      warm.Engine.wall_s warm.Engine.solves_per_s (hit_rate par) (hit_rate warm)
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) !cleanup;
  Printf.printf
    "\nspeedup %.2fx on %d cores (%d domains); warm hit rate %.0f%%;\n\
     written to BENCH_engine.json\n"
    speedup cores domains (100. *. hit_rate warm)

(* ------------------------------------------------------------------ *)
(* Ladder: incremental assumption sweeps vs monolithic re-encoding     *)
(* ------------------------------------------------------------------ *)

let ladder_bench ?(budget = 60.) ?(limit = 24) () =
  let module Npn = Mm_engine.Npn in
  section "Ladder: incremental assumption sweep vs monolithic re-encoding";
  (* Deterministic sample of 4-input NPN class representatives: enumerate
     all 2^16 tables, canonicalize, then take an evenly spaced slice of the
     sorted class list so easy and hard classes are both represented. *)
  let seen = Hashtbl.create 512 in
  for v = 0 to 65535 do
    let rep, _ = Npn.canon (Tt.of_int 4 v) in
    Hashtbl.replace seen (Tt.to_int rep) ()
  done;
  let reps =
    Array.of_list
      (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []))
  in
  let n_total = Array.length reps in
  let limit = max 1 (min limit n_total) in
  let sample = Array.init limit (fun i -> reps.(i * n_total / limit)) in
  let specs =
    Array.map
      (fun v ->
        Spec.make ~name:(Printf.sprintf "npn-%04x" v) [| Tt.of_int 4 v |])
      sample
  in
  (* identical caps on every mode keep the sweeps point-for-point
     comparable: same budget points, same verdicts, different solvers *)
  let sweep ~incremental ~racing spec =
    let t0 = Unix.gettimeofday () in
    let r =
      Synth.minimize ~timeout_per_call:budget ~max_rops:4 ~max_steps:3
        ~incremental ~racing spec
    in
    let wall = Unix.gettimeofday () -. t0 in
    let conflicts =
      List.fold_left
        (fun acc a -> acc + a.Synth.solver_stats.Mm_sat.Solver.conflicts)
        0 r.Synth.attempts
    in
    (r, wall, conflicts)
  in
  let fingerprint (r : Synth.report) =
    ( (match r.Synth.best with
       | Some (_, a) -> Some (a.Synth.n_rops, a.Synth.n_legs, a.Synth.steps_per_leg)
       | None -> None),
      r.Synth.rops_proven_minimal,
      r.Synth.steps_proven_minimal )
  in
  let timed_out (r : Synth.report) =
    List.exists (fun a -> a.Synth.verdict = Synth.Timeout) r.Synth.attempts
  in
  let t =
    Table.create
      [ "class"; "verdict"; "mono(s)"; "inc(s)"; "race(s)"; "confl mono";
        "confl inc"; "match" ]
  in
  let rows = ref [] in
  let mismatches = ref 0 in
  let skipped = ref 0 in
  Array.iter
    (fun spec ->
      (* The incremental sweep runs first as a screen: a class that cannot
         finish inside the per-call budget is reported but excluded from
         the aggregate — walls of budget-capped runs measure the budget,
         not the solver, and a timeout verdict is nondeterministic across
         paths so it cannot participate in the differential check either. *)
      let ri, wi, ci = sweep ~incremental:true ~racing:false spec in
      if timed_out ri then begin
        incr skipped;
        Table.add_row t
          [ Spec.name spec; "budget"; "-"; Printf.sprintf "%.2f" wi; "-"; "-";
            string_of_int ci; "t/o" ];
        rows := (Spec.name spec, "budget", 0., 0., 0., 0, 0, 0, true, true)
                :: !rows
      end
      else begin
        let rm, wm, cm = sweep ~incremental:false ~racing:false spec in
        let rr, wr, cr = sweep ~incremental:true ~racing:true spec in
        if timed_out rm || timed_out rr then begin
          incr skipped;
          Table.add_row t
            [ Spec.name spec; "budget"; Printf.sprintf "%.2f" wm;
              Printf.sprintf "%.2f" wi; Printf.sprintf "%.2f" wr;
              string_of_int cm; string_of_int ci; "t/o" ];
          rows := (Spec.name spec, "budget", 0., 0., 0., 0, 0, 0, true, true)
                  :: !rows
        end
        else begin
          let same =
            fingerprint rm = fingerprint ri && fingerprint rm = fingerprint rr
          in
          if not same then incr mismatches;
          let verdict =
            match rm.Synth.best with
            | Some (_, a) ->
              Printf.sprintf "N_R=%d N_VS=%d" a.Synth.n_rops
                a.Synth.steps_per_leg
            | None -> "none"
          in
          Table.add_row t
            [ Spec.name spec; verdict; Printf.sprintf "%.2f" wm;
              Printf.sprintf "%.2f" wi; Printf.sprintf "%.2f" wr;
              string_of_int cm; string_of_int ci;
              (if same then "yes" else "NO") ];
          rows :=
            (Spec.name spec, verdict, wm, wi, wr, cm, ci, cr, same, false)
            :: !rows
        end
      end)
    specs;
  Table.print t;
  let rows = List.rev !rows in
  let done_rows =
    List.filter (fun (_, _, _, _, _, _, _, _, _, skip) -> not skip) rows
  in
  let tot f = List.fold_left (fun acc r -> acc +. f r) 0. done_rows in
  let wall_mono = tot (fun (_, _, w, _, _, _, _, _, _, _) -> w) in
  let wall_inc = tot (fun (_, _, _, w, _, _, _, _, _, _) -> w) in
  let wall_race = tot (fun (_, _, _, _, w, _, _, _, _, _) -> w) in
  let toti f = List.fold_left (fun acc r -> acc + f r) 0 done_rows in
  let confl_mono = toti (fun (_, _, _, _, _, c, _, _, _, _) -> c) in
  let confl_inc = toti (fun (_, _, _, _, _, _, c, _, _, _) -> c) in
  let confl_race = toti (fun (_, _, _, _, _, _, _, c, _, _) -> c) in
  let speedup_inc = if wall_inc > 0. then wall_mono /. wall_inc else 0. in
  let speedup_race = if wall_race > 0. then wall_mono /. wall_race else 0. in
  let per_class =
    String.concat ",\n"
      (List.map
         (fun (name, verdict, wm, wi, wr, cm, ci, cr, same, skip) ->
           Printf.sprintf
             "    { \"class\": \"%s\", \"verdict\": \"%s\", \
              \"monolithic_wall_s\": %.4f, \"incremental_wall_s\": %.4f, \
              \"racing_wall_s\": %.4f, \"monolithic_conflicts\": %d, \
              \"incremental_conflicts\": %d, \"racing_conflicts\": %d, \
              \"verdicts_match\": %b, \"excluded_over_budget\": %b }"
             name verdict wm wi wr cm ci cr same skip)
         rows)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"mmsynth-bench-ladder-v1\",\n\
      \  \"workload\": \"4-input NPN class representatives, minimize sweep \
       (max_rops=4, max_steps=3)\",\n\
      \  \"host_cores\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"budget_per_call_s\": %.1f,\n\
      \  \"classes_total\": %d,\n\
      \  \"classes_sampled\": %d,\n\
      \  \"classes_over_budget\": %d,\n\
      \  \"monolithic_wall_s\": %.3f,\n\
      \  \"incremental_wall_s\": %.3f,\n\
      \  \"racing_wall_s\": %.3f,\n\
      \  \"monolithic_conflicts\": %d,\n\
      \  \"incremental_conflicts\": %d,\n\
      \  \"racing_conflicts\": %d,\n\
      \  \"speedup_incremental\": %.2f,\n\
      \  \"speedup_racing\": %.2f,\n\
      \  \"verdict_mismatches\": %d,\n\
      \  \"per_class\": [\n%s\n  ]\n\
       }"
      (Domain.recommended_domain_count ())
      (Domain.recommended_domain_count ())
      budget n_total limit !skipped wall_mono wall_inc wall_race confl_mono
      confl_inc confl_race speedup_inc speedup_race !mismatches per_class
  in
  let oc = open_out "BENCH_ladder.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nincremental %.2fx, incremental+racing %.2fx vs monolithic \
     (%d/%d classes, %d over budget, %d mismatches); written to \
     BENCH_ladder.json\n"
    speedup_inc speedup_race limit n_total !skipped !mismatches

(* ------------------------------------------------------------------ *)
(* Prove: portfolio / cube-and-conquer orchestration vs single core    *)
(* ------------------------------------------------------------------ *)

let prove_bench ?(budget = 15.) ?(limit = 4) ?(workers = 4) () =
  let module Npn = Mm_engine.Npn in
  let module Prove = Mm_prove.Prove in
  section "Prove: diversified portfolio + cube-and-conquer vs single core";
  (* Screen a deterministic sample of 4-input NPN class representatives
     single-core to (a) rank them by hardness and (b) find classes the
     per-call budget cannot finish. The prove orchestrator then attacks the
     hardest in-budget classes at N workers and at 1 worker (same code
     path, zero parallelism — the fair denominator for the speedup ratio),
     plus at least one over-budget instance to see whether the cube split
     brings it within reach. *)
  let seen = Hashtbl.create 512 in
  for v = 0 to 65535 do
    let rep, _ = Npn.canon (Tt.of_int 4 v) in
    Hashtbl.replace seen (Tt.to_int rep) ()
  done;
  let reps =
    Array.of_list
      (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []))
  in
  let n_total = Array.length reps in
  let n_screen = max limit (min 24 n_total) in
  let sample = Array.init n_screen (fun i -> reps.(i * n_total / n_screen)) in
  let spec_of v =
    Spec.make ~name:(Printf.sprintf "npn-%04x" v) [| Tt.of_int 4 v |]
  in
  let fingerprint (r : Synth.report) =
    ( (match r.Synth.best with
       | Some (_, a) ->
         Some (a.Synth.n_rops, a.Synth.n_legs, a.Synth.steps_per_leg)
       | None -> None),
      r.Synth.rops_proven_minimal,
      r.Synth.steps_proven_minimal )
  in
  let timed_out (r : Synth.report) =
    List.exists (fun a -> a.Synth.verdict = Synth.Timeout) r.Synth.attempts
  in
  let sweep_single ?(budget = budget) spec =
    let t0 = Unix.gettimeofday () in
    let r =
      Synth.minimize ~timeout_per_call:budget ~max_rops:4 ~max_steps:3 spec
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let sweep_prove ?(budget = budget) ~workers spec =
    let pcfg = { Prove.default with Prove.workers } in
    let prove = Prove.hook pcfg spec in
    let t0 = Unix.gettimeofday () in
    let r =
      Synth.minimize ~timeout_per_call:budget ~max_rops:4 ~max_steps:3
        ~incremental:false ~prove spec
    in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "screening %d classes at %.0fs per call...\n%!" n_screen
    budget;
  let screened =
    Array.to_list
      (Array.map
         (fun v ->
           let spec = spec_of v in
           let r, w = sweep_single spec in
           (v, spec, r, w))
         sample)
  in
  let over, in_budget =
    List.partition (fun (_, _, r, _) -> timed_out r) screened
  in
  let hardest =
    List.filteri
      (fun i _ -> i < limit)
      (List.sort
         (fun (_, _, _, wa) (_, _, _, wb) -> compare wb wa)
         in_budget)
  in
  let t =
    Table.create
      [ "class"; "verdict"; "single(s)"; "prove-1(s)";
        Printf.sprintf "prove-%d(s)" workers; "speedup"; "mode"; "match" ]
  in
  let mismatches = ref 0 in
  let rows =
    List.map
      (fun (v, spec, rs, ws) ->
        let r1, w1 = sweep_prove ~workers:1 spec in
        let rn, wn = sweep_prove ~workers spec in
        (* A class whose orchestrated sweep hits the per-call budget is
           excluded from the differential and the aggregates, exactly like
           the ladder bench: a timeout verdict measures the budget, not
           the solver, and is nondeterministic across paths. *)
        let skip = timed_out rs || timed_out r1 || timed_out rn in
        let same =
          skip
          || (fingerprint rs = fingerprint r1
              && fingerprint rs = fingerprint rn)
        in
        if not same then incr mismatches;
        let verdict =
          match rs.Synth.best with
          | Some (_, a) ->
            Printf.sprintf "N_R=%d N_VS=%d" a.Synth.n_rops a.Synth.steps_per_leg
          | None -> "none"
        in
        let speedup = if wn > 0. then w1 /. wn else 0. in
        (* cube whenever a selector bank exists, i.e. every point with
           R-ops or V-steps — report the dominant mode for the class *)
        let mode = "auto" in
        Table.add_row t
          [ Printf.sprintf "npn-%04x" v; verdict; Printf.sprintf "%.2f" ws;
            Printf.sprintf "%.2f" w1; Printf.sprintf "%.2f" wn;
            Printf.sprintf "%.2f" speedup; mode;
            (if skip then "t/o" else if same then "yes" else "NO") ];
        (v, verdict, ws, w1, wn, same, skip))
      hardest
  in
  Table.print t;
  (* Over-budget attack: a class the single-core screen could not finish.
     When the whole sample fits the budget (fast host, generous budget),
     manufacture one honestly by halving the per-call budget on the
     hardest class until its single-core sweep times out, then give the
     orchestrator that same reduced budget. *)
  let over_attempt =
    let attack v spec atk_budget =
      Printf.printf
        "over-budget attack: npn-%04x at %.2fs per call, %d workers...\n%!" v
        atk_budget workers;
      let r, w = sweep_prove ~budget:atk_budget ~workers spec in
      let completed = not (timed_out r) in
      Printf.printf "  -> %s in %.2fs\n%!"
        (if completed then "completed" else "still over budget")
        w;
      Some (v, atk_budget, completed, w)
    in
    match over with
    | (v, spec, _, _) :: _ -> attack v spec budget
    | [] -> (
      match
        List.sort (fun (_, _, _, wa) (_, _, _, wb) -> compare wb wa) in_budget
      with
      | [] -> None
      | (v, spec, _, _) :: _ ->
        let rec shrink b tries =
          if tries = 0 then None
          else
            let r, _ = sweep_single ~budget:b spec in
            if timed_out r then Some b else shrink (b /. 2.) (tries - 1)
        in
        (match shrink (budget /. 2.) 5 with
         | Some b -> attack v spec b
         | None -> None))
  in
  let done_rows =
    List.filter (fun (_, _, _, _, _, _, skip) -> not skip) rows
  in
  let tot f = List.fold_left (fun acc r -> acc +. f r) 0. done_rows in
  let wall_single = tot (fun (_, _, w, _, _, _, _) -> w) in
  let wall_p1 = tot (fun (_, _, _, w, _, _, _) -> w) in
  let wall_pn = tot (fun (_, _, _, _, w, _, _) -> w) in
  let speedup_workers = if wall_pn > 0. then wall_p1 /. wall_pn else 0. in
  let speedup_vs_single = if wall_pn > 0. then wall_single /. wall_pn else 0. in
  let per_class =
    String.concat ",\n"
      (List.map
         (fun (v, verdict, ws, w1, wn, same, skip) ->
           Printf.sprintf
             "    { \"class\": \"npn-%04x\", \"verdict\": \"%s\", \
              \"single_core_wall_s\": %.4f, \"prove_1worker_wall_s\": %.4f, \
              \"prove_%dworker_wall_s\": %.4f, \"verdicts_match\": %b, \
              \"excluded_over_budget\": %b }"
             v verdict ws w1 workers wn same skip)
         rows)
  in
  let over_json =
    match over_attempt with
    | None -> "null"
    | Some (v, b, completed, w) ->
      Printf.sprintf
        "{ \"class\": \"npn-%04x\", \"budget_per_call_s\": %.4f, \
         \"completed\": %b, \"wall_s\": %.4f }"
        v b completed w
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"mmsynth-bench-prove-v1\",\n\
      \  \"workload\": \"hardest in-budget 4-input NPN classes, minimize \
       sweep (max_rops=4, max_steps=3)\",\n\
      \  \"host_cores\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"workers\": %d,\n\
      \  \"budget_per_call_s\": %.1f,\n\
      \  \"classes_screened\": %d,\n\
      \  \"classes_over_budget\": %d,\n\
      \  \"classes_attacked\": %d,\n\
      \  \"single_core_wall_s\": %.3f,\n\
      \  \"prove_1worker_wall_s\": %.3f,\n\
      \  \"prove_nworker_wall_s\": %.3f,\n\
      \  \"speedup_vs_1worker\": %.2f,\n\
      \  \"speedup_vs_single_core\": %.2f,\n\
      \  \"target_speedup\": 1.5,\n\
      \  \"target_met\": %b,\n\
      \  \"verdict_mismatches\": %d,\n\
      \  \"over_budget_attempt\": %s,\n\
      \  \"per_class\": [\n%s\n  ]\n\
       }"
      (Domain.recommended_domain_count ())
      (Domain.recommended_domain_count ())
      workers budget n_screen (List.length over) (List.length done_rows)
      wall_single wall_p1 wall_pn speedup_workers speedup_vs_single
      (speedup_workers >= 1.5 || speedup_vs_single >= 1.5)
      !mismatches over_json per_class
  in
  let oc = open_out "BENCH_prove.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "\nprove %.2fx vs 1-worker orchestrator, %.2fx vs single-core ladder \
     (%d classes, %d workers on %d cores, %d mismatches); written to \
     BENCH_prove.json\n"
    speedup_workers speedup_vs_single (List.length done_rows) workers
    (Domain.recommended_domain_count ()) !mismatches

(* ------------------------------------------------------------------ *)
(* Robustness: batch completion and overhead under injected faults     *)
(* ------------------------------------------------------------------ *)

let robustness_bench () =
  let module Engine = Mm_engine.Engine in
  let module Fault = Mm_engine.Fault in
  section "Robustness: batch completion under injected worker/solver faults";
  Printf.printf
    "Full 3-input sweep with worker crashes and forced solver unknowns\n\
     injected at increasing rates (deterministic seed); retries + baseline\n\
     fallback must keep the answered fraction at 100%%.\n\n%!";
  let specs = Engine.all_functions ~arity:3 in
  let run rate =
    let fault =
      if rate = 0. then None
      else
        Some
          (Fault.create ~seed:2025
             [
               Fault.rule Fault.Worker rate Fault.Crash;
               Fault.rule Fault.Solver rate Fault.Unknown_result;
             ])
    in
    let cfg =
      Engine.config ~timeout_per_call:30. ~retries:2 ~retry_backoff_s:0.01
        ~fallback:Engine.Use_baseline ?fault ()
    in
    let results, s = Engine.run cfg specs in
    let answered =
      Array.fold_left
        (fun n r ->
          (* a verified circuit or an UNSAT proof both answer the spec *)
          if r.Engine.circuit <> None || r.Engine.error = None then n + 1 else n)
        0 results
    in
    (float_of_int answered /. float_of_int (Array.length specs), s)
  in
  let rates = [ 0.0; 0.1; 0.3 ] in
  let outcomes = List.map (fun r -> (r, run r)) rates in
  let base_wall =
    match outcomes with
    | (_, (_, s)) :: _ -> s.Engine.wall_s
    | [] -> 1.
  in
  let t =
    Table.create
      [ "fault rate"; "answered"; "exact"; "fallbacks"; "retries";
        "wall [s]"; "overhead" ]
  in
  List.iter
    (fun (rate, (completion, (s : Engine.summary))) ->
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (100. *. rate);
          Printf.sprintf "%.1f%%" (100. *. completion);
          string_of_int s.Engine.sat;
          string_of_int s.Engine.fallbacks;
          string_of_int s.Engine.retries_used;
          Printf.sprintf "%.2f" s.Engine.wall_s;
          (if base_wall > 0. then
             Printf.sprintf "%.2fx" (s.Engine.wall_s /. base_wall)
           else "-");
        ])
    outcomes;
  Table.print t;
  let json =
    Printf.sprintf
      "{\n\
      \  \"workload\": \"all 256 3-input functions, minimize loop, retries=2, baseline fallback\",\n\
      \  \"host_cores\": %d,\n\
      \  \"seed\": 2025,\n\
      \  \"points\": [\n%s\n\
      \  ]\n\
       }"
      (Domain.recommended_domain_count ())
      (String.concat ",\n"
         (List.map
            (fun (rate, (completion, (s : Engine.summary))) ->
              Printf.sprintf
                "    {\"fault_rate\": %.2f, \"completion_rate\": %.4f, \
                 \"exact\": %d, \"fallbacks\": %d, \"retries_used\": %d, \
                 \"wall_s\": %.3f, \"overhead_vs_clean\": %.3f}"
                rate completion s.Engine.sat s.Engine.fallbacks
                s.Engine.retries_used s.Engine.wall_s
                (if base_wall > 0. then s.Engine.wall_s /. base_wall else 0.))
            outcomes))
  in
  let oc = open_out "BENCH_robustness.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwritten to BENCH_robustness.json\n"

(* ------------------------------------------------------------------ *)
(* Serve: daemon throughput/latency under concurrent load, warm vs cold *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Server = Mm_serve.Server in
  let module Client = Mm_serve.Client in
  let module Wire = Mm_serve.Wire in
  let module Json = Mm_report.Json in
  section "Serve: resident daemon under concurrent load, warm vs cold";
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_serve_bench_%d_%s" (Unix.getpid ()) name)
  in
  let sock = tmp "sock" in
  let cache_path = tmp "cache" in
  let engine =
    Engine.config ~timeout_per_call:30.
      ~cache:(Cache.create ~path:cache_path ()) ()
  in
  let cfg = Server.config ~engine ~max_pending:64 ~socket_path:sock () in
  let server =
    match Server.start cfg with
    | Ok t -> t
    | Error msg -> failwith ("serve bench: " ^ msg)
  in
  let specs = Engine.all_functions ~arity:3 in
  let n_specs = Array.length specs in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else
      sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  (* one warm-up sweep populates the daemon's cache, so the concurrency
     levels measure serving overhead, not first-time SAT solving *)
  let sweep ?sock:(sk = sock) conc =
    let lats = Array.make n_specs 0. in
    let shed = Atomic.make 0 and transport = Atomic.make 0 in
    let next = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let worker () =
      match Client.wait_ready (Client.Unix_sock sk) with
      | Error _ -> Atomic.incr transport
      | Ok c ->
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n_specs then begin
            let s0 = Unix.gettimeofday () in
            (match Client.synth c specs.(i) with
             | Ok (Wire.Result _) -> lats.(i) <- Unix.gettimeofday () -. s0
             | Ok (Wire.Err e) -> (
               match e.Wire.code with
               | Wire.Overloaded | Wire.Unavailable -> Atomic.incr shed
               | Wire.Bad_request | Wire.Deadline_exceeded | Wire.Internal ->
                 Atomic.incr transport)
             | Error _ -> Atomic.incr transport);
            go ()
          end
        in
        go ();
        Client.close c
    in
    let threads = List.init conc (fun _ -> Thread.create worker ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let ok = Array.of_list (List.filter (fun l -> l > 0.) (Array.to_list lats)) in
    Array.sort compare ok;
    ( conc,
      Array.length ok,
      wall,
      float_of_int (Array.length ok) /. wall,
      percentile ok 0.50,
      percentile ok 0.95,
      percentile ok 0.99,
      Atomic.get shed,
      Atomic.get transport )
  in
  Printf.printf "priming the daemon cache with the 3-input sweep...\n%!";
  ignore (sweep 4);
  let levels = List.map sweep [ 1; 4 ] in
  let t =
    Table.create
      [ "clients"; "requests"; "wall [s]"; "req/s"; "p50 [ms]"; "p95 [ms]";
        "p99 [ms]"; "shed"; "errors" ]
  in
  List.iter
    (fun (conc, ok, wall, rps, p50, p95, p99, shed, errors) ->
      Table.add_row t
        [
          string_of_int conc;
          string_of_int ok;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" rps;
          Printf.sprintf "%.2f" (1e3 *. p50);
          Printf.sprintf "%.2f" (1e3 *. p95);
          Printf.sprintf "%.2f" (1e3 *. p99);
          string_of_int shed;
          string_of_int errors;
        ])
    levels;
  Table.print t;
  (* warm daemon round trip vs a cold engine run for one repeated spec:
     the daemon answers from its open cache + resident heap, the cold run
     pays pool spin-up and the full SAT solve every time *)
  let spec4 =
    (* (x1 & x2) xor (x3 | x4): needs one R-op and a few UNSAT proofs, so a
       cold run pays a real (but bounded) SAT bill *)
    Spec.of_fun ~name:"bench4" ~arity:4 ~outputs:1 (fun ~row ~output:_ ->
        let x i = (row lsr (i - 1)) land 1 = 1 in
        (x 1 && x 2) <> (x 3 || x 4))
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let warm_client =
    match Client.wait_ready (Client.Unix_sock sock) with
    | Ok c -> c
    | Error msg -> failwith ("serve bench: " ^ msg)
  in
  ignore (Client.synth warm_client spec4) (* prime *);
  let warm_s =
    median
      (List.init 5 (fun _ ->
           let t0 = Unix.gettimeofday () in
           (match Client.synth warm_client spec4 with
            | Ok (Wire.Result _) -> ()
            | Ok (Wire.Err e) -> failwith ("warm request refused: " ^ e.Wire.msg)
            | Error msg -> failwith ("warm request: " ^ msg));
           Unix.gettimeofday () -. t0))
  in
  Client.close warm_client;
  let cold_s =
    median
      (List.init 3 (fun _ ->
           let cfg = Engine.config ~timeout_per_call:30. () in
           let t0 = Unix.gettimeofday () in
           ignore (Engine.run cfg [| spec4 |]);
           Unix.gettimeofday () -. t0))
  in
  let speedup = if warm_s > 0. then cold_s /. warm_s else 0. in
  Printf.printf
    "\nrepeated 4-input spec: warm daemon %.2f ms vs cold engine run %.0f ms \
     (%.0fx)\n%!"
    (1e3 *. warm_s) (1e3 *. cold_s) speedup;
  (* atlas-backed serving: the same sweep against a daemon whose cache
     carries the precomputed NPN atlas tier, so every covered request is
     answered with zero solver calls *)
  let module Atlas = Mm_atlas.Atlas in
  let atlas_path = tmp "atlas" in
  let atlas_goals =
    Atlas.universe ~modes:[ Atlas.Mixed ] ~max_n:3
      ~include_tts:[ Spec.output spec4 0 ] ()
  in
  let atlas_build_s, atlas_records, atlas_bytes =
    let t0 = Unix.gettimeofday () in
    match
      Atlas.build ~effort:2 ~timeout_per_call:10. ~resume:false
        ~path:atlas_path atlas_goals
    with
    | Error e -> failwith (Format.asprintf "atlas build: %a" Atlas.pp_error e)
    | Ok _ -> (
      let wall = Unix.gettimeofday () -. t0 in
      match Atlas.info atlas_path with
      | Ok i -> (wall, i.Atlas.i_records, i.Atlas.i_bytes)
      | Error e -> failwith (Format.asprintf "atlas info: %a" Atlas.pp_error e))
  in
  Printf.printf
    "\natlas: %d records (%d bytes) built in %.1fs; restarting the workload \
     against an atlas-backed daemon\n%!"
    atlas_records atlas_bytes atlas_build_s;
  let attach_atlas cache =
    match Atlas.load atlas_path with
    | Ok a -> Atlas.attach a cache
    | Error e -> failwith (Format.asprintf "atlas load: %a" Atlas.pp_error e)
  in
  let sock2 = tmp "sock2" in
  let cache2 = Cache.create () in
  attach_atlas cache2;
  let server2 =
    let engine = Engine.config ~timeout_per_call:30. ~cache:cache2 () in
    match
      Server.start (Server.config ~engine ~max_pending:64 ~socket_path:sock2 ())
    with
    | Ok t -> t
    | Error msg -> failwith ("serve bench: " ^ msg)
  in
  let atlas_level = sweep ~sock:sock2 4 in
  (* atlas round trip for one covered request, measured warm *)
  let warm_atlas_s =
    let c =
      match Client.wait_ready (Client.Unix_sock sock2) with
      | Ok c -> c
      | Error msg -> failwith ("serve bench: " ^ msg)
    in
    ignore (Client.synth c specs.(0x16));
    let m =
      median
        (List.init 5 (fun _ ->
             let t0 = Unix.gettimeofday () in
             (match Client.synth c specs.(0x16) with
              | Ok (Wire.Result _) -> ()
              | Ok (Wire.Err e) ->
                failwith ("atlas request refused: " ^ e.Wire.msg)
              | Error msg -> failwith ("atlas request: " ^ msg));
             Unix.gettimeofday () -. t0))
    in
    Client.close c;
    m
  in
  let daemon2_stats = Server.stats_json server2 in
  Server.stop server2;
  let json_int path json =
    let rec go path json =
      match (path, json) with
      | [], Json.Int n -> Some n
      | k :: rest, Json.Obj kvs ->
        Option.bind (List.assoc_opt k kvs) (go rest)
      | _ -> None
    in
    Option.value ~default:0 (go path json)
  in
  let atlas_answered = json_int [ "engine"; "atlas" ] daemon2_stats in
  let atlas_sat = json_int [ "engine"; "sat" ] daemon2_stats in
  let atlas_hit_rate =
    float_of_int atlas_answered
    /. float_of_int (max 1 (atlas_answered + atlas_sat))
  in
  (* cold single-request latency: fresh engine per request, with and
     without opening + attaching the atlas artifact *)
  let cold_atlas_s =
    median
      (List.init 3 (fun _ ->
           let cache = Cache.create () in
           let t0 = Unix.gettimeofday () in
           attach_atlas cache;
           let cfg = Engine.config ~timeout_per_call:30. ~cache () in
           ignore (Engine.run cfg [| spec4 |]);
           Unix.gettimeofday () -. t0))
  in
  Printf.printf
    "atlas sweep: hit rate %.0f%% (%d atlas / %d solved); warm request %.0f \
     us; cold 4-input run %.2f ms with atlas vs %.0f ms without\n%!"
    (100. *. atlas_hit_rate) atlas_answered atlas_sat (1e6 *. warm_atlas_s)
    (1e3 *. cold_atlas_s) (1e3 *. cold_s);
  (try Sys.remove atlas_path with Sys_error _ -> ());
  let daemon_stats = Server.stats_json server in
  Server.stop server;
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (cache_path :: Cache.quarantined_siblings cache_path);
  let level_json (conc, ok, wall, rps, p50, p95, p99, shed, errors) =
    Json.Obj
      [
        ("concurrency", Json.Int conc);
        ("requests_ok", Json.Int ok);
        ("wall_s", Json.Float wall);
        ("throughput_rps", Json.Float rps);
        ("p50_s", Json.Float p50);
        ("p95_s", Json.Float p95);
        ("p99_s", Json.Float p99);
        ("shed", Json.Int shed);
        ( "shed_rate",
          Json.Float
            (float_of_int shed /. float_of_int (max 1 (ok + shed))) );
        ("transport_errors", Json.Int errors);
      ]
  in
  let json =
    Json.Obj
      [
        ( "workload",
          Json.String
            "all 256 3-input functions over the Unix socket, warm cache" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("levels", Json.List (List.map level_json levels));
        ( "warm_vs_cold",
          Json.Obj
            [
              ("spec", Json.String "(x1&x2) xor (x3|x4), repeated");
              ("warm_daemon_request_s", Json.Float warm_s);
              ("cold_engine_run_s", Json.Float cold_s);
              ("warm_speedup", Json.Float speedup);
            ] );
        ( "atlas",
          Json.Obj
            [
              ("records", Json.Int atlas_records);
              ("size_bytes", Json.Int atlas_bytes);
              ("build_s", Json.Float atlas_build_s);
              ("level", level_json atlas_level);
              ("atlas_hit_rate", Json.Float atlas_hit_rate);
              ("requests_atlas_answered", Json.Int atlas_answered);
              ("requests_solver_answered", Json.Int atlas_sat);
              ("warm_request_s", Json.Float warm_atlas_s);
              ("cold_run_with_atlas_s", Json.Float cold_atlas_s);
              ("cold_run_without_atlas_s", Json.Float cold_s);
            ] );
        ("daemon_stats", Json.Obj [ ("final", daemon_stats) ]);
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written to BENCH_serve.json\n"

(* ------------------------------------------------------------------ *)
(* Storm: open-loop load on a 4-shard cluster with a mid-run kill      *)
(* ------------------------------------------------------------------ *)

let storm_bench () =
  let module Engine = Mm_engine.Engine in
  let module Cache = Mm_engine.Cache in
  let module Server = Mm_serve.Server in
  let module Client = Mm_serve.Client in
  let module Wire = Mm_serve.Wire in
  let module Router = Mm_cluster.Router in
  let module Rng = Mm_device.Rng in
  let module Json = Mm_report.Json in
  section "Storm: open-loop arrivals on 4 shards, one killed mid-run";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let n_shards = 4 in
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_storm_%d_%s" (Unix.getpid ()) name)
  in
  let sock i = tmp (Printf.sprintf "shard%d.sock" i) in
  let shard_cfg i =
    (* one warm in-memory cache per shard: the ring partitions by NPN
       class, so each shard's cache sees its whole slice *)
    Server.config
      ~engine:(Engine.config ~timeout_per_call:30. ~cache:(Cache.create ()) ())
      ~max_pending:64 ~max_batch:16
      ~shard_id:(Printf.sprintf "shard-%d" i)
      ~socket_path:(sock i) ()
  in
  let boot i =
    match Server.start (shard_cfg i) with
    | Ok t -> t
    | Error msg -> failwith (Printf.sprintf "storm: shard %d: %s" i msg)
  in
  let servers = Array.init n_shards boot in
  let router =
    Router.create
      (Router.config ~replicas:2 ~retry_budget_s:2.0 ~max_rounds:4
         ~probe_interval_s:(Some 0.1) ~pool_size:4 ~seed:42 ())
      (List.init n_shards (fun i ->
           { Router.id = Printf.sprintf "shard-%d" i;
             addr = Client.Unix_sock (sock i) }))
  in
  (* mixed widths: every 2- and 3-input function, shuffled one way *)
  let specs =
    let a = Array.append (Engine.all_functions ~arity:2)
        (Engine.all_functions ~arity:3) in
    let rng = Rng.create 7 in
    for i = Array.length a - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.
    else
      sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))
  in
  (* one storm phase: open-loop Poisson arrivals at [rate] req/s — a
     request is launched at its scheduled time whether or not earlier
     ones have answered, so a struggling cluster faces a growing backlog
     instead of a conveniently self-throttling client *)
  let storm ~label ~rate ~n_requests ~kill =
    let rng = Rng.create 11 in
    let arrivals = Array.make n_requests 0. in
    let t = ref 0. in
    for i = 0 to n_requests - 1 do
      t := !t +. (-.log (1. -. Rng.float rng) /. rate);
      arrivals.(i) <- !t
    done;
    let outcomes = Array.make n_requests None in
    let m = Mutex.create () in
    let launched = ref 0 in
    let t0 = Unix.gettimeofday () in
    (match kill with
     | None -> ()
     | Some (victim, at_frac) ->
       let kill_at = at_frac *. arrivals.(n_requests - 1) in
       ignore
         (Thread.create
            (fun () ->
               Thread.delay kill_at;
               Printf.printf "  [%.2fs] killing shard-%d (abrupt, no drain)\n%!"
                 kill_at victim;
               Server.die servers.(victim);
               Server.wait servers.(victim);
               Thread.delay 0.5;
               servers.(victim) <- boot victim;
               Printf.printf "  [%.2fs] shard-%d restarted\n%!"
                 (Unix.gettimeofday () -. t0) victim)
            ()));
    let worker i () =
      let s0 = Unix.gettimeofday () in
      let r = Router.synth router specs.(i mod Array.length specs) in
      let dt = Unix.gettimeofday () -. s0 in
      Mutex.protect m (fun () -> outcomes.(i) <- Some (r, dt))
    in
    let threads = ref [] in
    for i = 0 to n_requests - 1 do
      let due = arrivals.(i) -. (Unix.gettimeofday () -. t0) in
      if due > 0. then Thread.delay due;
      threads := Thread.create (worker i) () :: !threads;
      incr launched
    done;
    List.iter Thread.join !threads;
    let wall = Unix.gettimeofday () -. t0 in
    (* slice the answered latencies by the shard that answered *)
    let by_shard = Hashtbl.create 8 in
    let ok = ref 0 and shed = ref 0 and erred = ref 0 and failed = ref 0 in
    let failovers = ref 0 and hedged = ref 0 in
    let lats = ref [] in
    Array.iter
      (function
        | None -> ()
        | Some (r, dt) -> (
          match r with
          | Ok o -> (
            if o.Router.failover then incr failovers;
            if o.Router.hedged then incr hedged;
            match o.Router.reply with
            | Wire.Result _ ->
              incr ok;
              lats := dt :: !lats;
              let l =
                try Hashtbl.find by_shard o.Router.shard
                with Not_found -> ref []
              in
              l := dt :: !l;
              Hashtbl.replace by_shard o.Router.shard l
            | Wire.Err e -> (
              match e.Wire.code with
              | Wire.Overloaded | Wire.Unavailable -> incr shed
              | _ -> incr erred))
          | Error _ -> incr failed))
      outcomes;
    let availability = float_of_int !ok /. float_of_int (max 1 n_requests) in
    let all = Array.of_list !lats in
    Array.sort compare all;
    Printf.printf
      "  %s: %d req @ %.0f rps in %.2fs -> ok %d, shed %d, err %d, \
       no-answer %d; availability %.2f%%; failover %d, hedged %d; p50 %.1f \
       ms p95 %.1f ms p99 %.1f ms\n%!"
      label n_requests rate wall !ok !shed !erred !failed
      (100. *. availability) !failovers !hedged
      (1e3 *. percentile all 0.50)
      (1e3 *. percentile all 0.95)
      (1e3 *. percentile all 0.99);
    let shard_json =
      Hashtbl.fold
        (fun shard l acc ->
          let a = Array.of_list !l in
          Array.sort compare a;
          Json.Obj
            [
              ("shard", Json.String shard);
              ("answered", Json.Int (Array.length a));
              ("p50_s", Json.Float (percentile a 0.50));
              ("p95_s", Json.Float (percentile a 0.95));
              ("p99_s", Json.Float (percentile a 0.99));
            ]
          :: acc)
        by_shard []
    in
    ( availability,
      Json.Obj
        [
          ("phase", Json.String label);
          ("requests", Json.Int n_requests);
          ("rate_rps", Json.Float rate);
          ("wall_s", Json.Float wall);
          ("ok", Json.Int !ok);
          ("shed", Json.Int !shed);
          ( "shed_rate",
            Json.Float (float_of_int !shed /. float_of_int (max 1 n_requests))
          );
          ("typed_errors", Json.Int !erred);
          ("unanswered", Json.Int !failed);
          ("availability", Json.Float availability);
          ("failovers", Json.Int !failovers);
          ("hedged", Json.Int !hedged);
          ("p50_s", Json.Float (percentile all 0.50));
          ("p95_s", Json.Float (percentile all 0.95));
          ("p99_s", Json.Float (percentile all 0.99));
          ( "kill",
            match kill with
            | None -> Json.Null
            | Some (victim, at_frac) ->
              Json.Obj
                [
                  ("shard", Json.Int victim);
                  ("at_fraction", Json.Float at_frac);
                ] );
          ("per_shard", Json.List shard_json);
        ] )
  in
  (* cold: first sight of every class, SAT bills on every shard *)
  let _, cold_json =
    storm ~label:"cold" ~rate:60. ~n_requests:272 ~kill:None
  in
  (* warm: caches hot, then one shard is SIGKILLed (in-process stand-in:
     Server.die) mid-run and restarted 0.5 s later — the router must keep
     answering throughout via failover *)
  let availability, warm_json =
    storm ~label:"warm+kill" ~rate:250. ~n_requests:544
      ~kill:(Some (1, 0.45))
  in
  let router_stats = Router.stats_json router in
  Router.close router;
  Array.iter (fun s -> Server.stop s) servers;
  let json =
    Json.Obj
      [
        ( "workload",
          Json.String
            "open-loop Poisson arrivals, all 2- and 3-input functions \
             shuffled, 4 shards, replicas=2, one shard killed mid-warm-run" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("n_shards", Json.Int n_shards);
        ("phases", Json.List [ cold_json; warm_json ]);
        ("availability_under_kill", Json.Float availability);
        ("router_stats", router_stats);
      ]
  in
  let oc = open_out "BENCH_cluster.json" in
  output_string oc (Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written to BENCH_cluster.json\n";
  if availability < 0.99 then
    Printf.printf
      "WARNING: availability %.2f%% under the injected kill is below the \
       99%% target\n"
      (100. *. availability)

(* ------------------------------------------------------------------ *)
(* Atlas: offline universe build cost per effort tier + lookup speed   *)
(* ------------------------------------------------------------------ *)

let atlas_bench () =
  let module Atlas = Mm_atlas.Atlas in
  let module Json = Mm_report.Json in
  section "Atlas: offline NPN universe build per effort tier, lookup speed";
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mm_atlas_bench_%d_%s.mmatlas" (Unix.getpid ()) name)
  in
  let goals = Atlas.universe ~max_n:3 () in
  Printf.printf "universe: %d goals (all classes n<=3, both modes, both \
                 polarities)\n\n%!"
    (List.length goals);
  let t =
    Table.create
      [ "effort"; "built"; "failed"; "records"; "bytes"; "N_R proofs";
        "certificates"; "wall [s]" ]
  in
  let tiers =
    List.map
      (fun effort ->
        let path = tmp (Printf.sprintf "tier%d" effort) in
        let t0 = Unix.gettimeofday () in
        let stats =
          match
            Atlas.build ~effort ~timeout_per_call:10. ~resume:false ~path
              goals
          with
          | Ok s -> s
          | Error e ->
            failwith (Format.asprintf "tier %d build: %a" effort Atlas.pp_error e)
        in
        let wall = Unix.gettimeofday () -. t0 in
        let info =
          match Atlas.info path with
          | Ok i -> i
          | Error e ->
            failwith (Format.asprintf "tier %d info: %a" effort Atlas.pp_error e)
        in
        Table.add_row t
          [ string_of_int effort;
            string_of_int stats.Atlas.built;
            string_of_int stats.Atlas.failed;
            string_of_int info.Atlas.i_records;
            string_of_int info.Atlas.i_bytes;
            string_of_int info.Atlas.i_rops_exact;
            string_of_int info.Atlas.i_certificates;
            Printf.sprintf "%.2f" wall ];
        (effort, path, stats, info, wall))
      [ 1; 2; 3 ]
  in
  Table.print t;
  (* lookup latency: every 3-input function against the tier-2 artifact —
     canonicalize, hash probe, inverse transform, full row re-verification *)
  let _, lookup_path, _, _, _ = List.nth tiers 1 in
  let atlas =
    match Atlas.load lookup_path with
    | Ok a -> a
    | Error e -> failwith (Format.asprintf "lookup load: %a" Atlas.pp_error e)
  in
  let reps = 200 in
  let misses = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    for v = 0 to 255 do
      match
        Atlas.find atlas ~mode:Atlas.Mixed ~rop_kind:Mm_core.Rop.Nor
          ~taps:E.Any_vop (Tt.of_int 3 v)
      with
      | Some _ -> ()
      | None -> incr misses
    done
  done;
  let lookup_s = (Unix.gettimeofday () -. t0) /. float_of_int (reps * 256) in
  Printf.printf
    "\nlookup: %.1f us per answered minimization (%d lookups, %d misses)\n%!"
    (1e6 *. lookup_s) (reps * 256) !misses;
  let verify_s =
    let t0 = Unix.gettimeofday () in
    (match Atlas.verify lookup_path with
     | Ok _ -> ()
     | Error issues ->
       failwith
         (Format.asprintf "bench atlas failed verify: %a" Atlas.pp_issue
            (List.hd issues)));
    Unix.gettimeofday () -. t0
  in
  Printf.printf "verify: full re-simulation of every record in %.2fs\n%!"
    verify_s;
  let tier_json (effort, _, (stats : Atlas.build_stats), info, wall) =
    Json.Obj
      [
        ("effort", Json.Int effort);
        ("built", Json.Int stats.Atlas.built);
        ("failed", Json.Int stats.Atlas.failed);
        ("records", Json.Int info.Atlas.i_records);
        ("size_bytes", Json.Int info.Atlas.i_bytes);
        ("rops_exact", Json.Int info.Atlas.i_rops_exact);
        ("both_exact", Json.Int info.Atlas.i_both_exact);
        ("certificates", Json.Int info.Atlas.i_certificates);
        ("build_wall_s", Json.Float wall);
      ]
  in
  let json =
    Json.Obj
      [
        ( "workload",
          Json.String
            "all NPN classes n<=3, both modes and polarities, per effort \
             tier; lookups over all 256 3-input functions" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("goals", Json.Int (List.length goals));
        ("tiers", Json.List (List.map tier_json tiers));
        ("lookup_us", Json.Float (1e6 *. lookup_s));
        ("lookup_misses", Json.Int !misses);
        ("verify_s", Json.Float verify_s);
      ]
  in
  List.iter
    (fun (_, path, _, _, _) -> try Sys.remove path with Sys_error _ -> ())
    tiers;
  let oc = open_out "BENCH_atlas.json" in
  output_string oc (Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "written to BENCH_atlas.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (one Test.make per table/figure kernel)   *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "Bechamel micro-benchmarks (kernel of each experiment)";
  let open Bechamel in
  let open Toolkit in
  let and4 =
    Spec.of_fun ~name:"and4" ~arity:4 ~outputs:1 (fun ~row ~output:_ -> row = 15)
  in
  let tests =
    [
      Test.make ~name:"table1/vop-apply"
        (Staged.stage (fun () ->
             ignore
               (Vop.apply ~n:4 (Tt.var 4 1) ~te:(Literal.Pos 2) ~be:(Literal.Neg 3))));
      Test.make ~name:"table2/synth-and4-v-only"
        (Staged.stage (fun () ->
             ignore
               (Synth.solve_instance ~timeout:30.
                  (E.config ~n_legs:1 ~steps_per_leg:5 ~n_rops:0 ())
                  and4)));
      Test.make ~name:"table3/vop-closure-n3"
        (Staged.stage (fun () ->
             let lits = U.literal_functions ~n:3 in
             ignore (U.vop_closure ~n:3 ~electrodes:lits lits)));
      Test.make ~name:"table4/encode-gfmul-compact"
        (Staged.stage (fun () ->
             ignore
               (E.size
                  (E.config ~taps:E.Any_vop ~n_legs:6 ~steps_per_leg:3 ~n_rops:4 ())
                  (Gf.mul_spec 2))));
      Test.make ~name:"table5/baseline-full-adder"
        (Staged.stage (fun () ->
             ignore (Baseline.nor_network (Arith.adder_bits 1))));
      Test.make ~name:"fig1/evaluate-gfmul"
        (Staged.stage (fun () ->
             ignore (C.output_tables (Reference.gf4_mul_circuit ()))));
      Test.make ~name:"fig2/simulate-input-1011"
        (Staged.stage
           (let plan = Schedule.plan (Reference.gf4_mul_circuit ()) in
            fun () -> ignore (Schedule.execute plan ~input:0b1011 ())));
    ]
  in
  let grouped = Test.make_grouped ~name:"mmsynth" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t = Table.create [ "kernel"; "time/run"; "r^2" ] in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, ols_result) ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | Some _ | None -> nan
      in
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
        else Printf.sprintf "%.0f ns" time_ns
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      Table.add_row t [ name; pretty; r2 ])
    (List.sort compare rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* driver                                                              *)
(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [experiment] [options]\n\n\
     experiments:\n\
    \  table1       V-op behaviour (Table I)\n\
    \  table2       V-only AND/NAND/OR/NOR schedules (Table II)\n\
    \  table3       universality counts (Table III); --full includes the slow cell\n\
    \  table4       optimal synthesis MM vs R-only (Table IV); --budget SECONDS\n\
    \  table5       adder comparison with literature (Table V)\n\
    \  fig1         the GF(2^2) multiplier circuit\n\
    \  fig2         electrical trace for input 1011\n\
    \  reliability  MM vs R-only under variation (ablation A); --trials N\n\
    \  encodings    direct vs compact encoding (ablation B)\n\
    \  symmetry     symmetry-breaking ablation (ablation C)\n\
    \  crossbar     line array vs crossbar latency (extension D)\n\
    \  heuristic    scalable heuristic synthesis (extension E)\n\
    \  map          cut-based technology mapping onto SAT-optimal blocks\n\
    \               -> BENCH_map.json; --budget SECONDS per library probe\n\
    \  xbar         crossbar row-parallel scheduling vs 1D steps on the map\n\
    \               workloads -> BENCH_xbar.json; --budget SECONDS per probe\n\
    \  resyn        post-mapping resynthesis (sweep + window rewrite + leg\n\
    \               compaction) vs heuristic -> BENCH_resyn.json; --budget\n\
    \               SECONDS per probe\n\
    \  engine       batch engine: NPN classes + cache + domain pool -> BENCH_engine.json\n\
    \  ladder       incremental assumption sweep vs monolithic -> BENCH_ladder.json;\n\
    \               --budget SECONDS, --limit N classes\n\
    \  ladder-probe TABLE   per-attempt diagnostic for one 4-input class, both\n\
    \               paths (all-digit table ids need an x prefix, e.g. x0690)\n\
    \  ladder-scan  depth/hardness map of all 4-input classes, incremental only\n\
    \  prove        portfolio + cube-and-conquer orchestration vs single core\n\
    \               -> BENCH_prove.json; --budget SECONDS, --limit N classes,\n\
    \               --workers N\n\
    \  robustness   completion/overhead under injected faults -> BENCH_robustness.json\n\
    \  serve        resident daemon load test, warm vs cold, atlas-backed\n\
    \               level -> BENCH_serve.json\n\
    \  storm        open-loop storm on a 4-shard cluster with a mid-run\n\
    \               shard kill -> BENCH_cluster.json\n\
    \  atlas        NPN atlas build per effort tier + lookup latency\n\
    \               -> BENCH_atlas.json\n\
    \  perf         Bechamel micro-benchmarks\n\
    \  all          everything above (default)"

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let value flag default =
    let rec go = function
      | a :: b :: _ when a = flag -> (try float_of_string b with _ -> default)
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let budget = value "--budget" 120. in
  let trials = int_of_float (value "--trials" 40.) in
  let limit = int_of_float (value "--limit" 24.) in
  let full = has "--full" in
  let run_all () =
    table1 ();
    table2 ~budget ();
    table3 ~full ();
    table4 ~budget ();
    table5 ();
    fig1 ();
    fig2 ();
    reliability ~trials ();
    encodings ~budget ();
    symmetry ~budget ();
    crossbar ();
    heuristic_bench ();
    map_bench ();
    xbar_bench ();
    resyn_bench ();
    engine_bench ();
    ladder_bench ~budget:60. ~limit ();
    prove_bench ();
    robustness_bench ();
    serve_bench ();
    storm_bench ();
    atlas_bench ();
    perf ()
  in
  let positional =
    (* drop flags and their numeric values *)
    List.filter
      (fun a ->
        String.length a > 0 && a.[0] <> '-' && float_of_string_opt a = None)
      (List.tl args)
  in
  match positional with
  | [] | [ "all" ] -> run_all ()
  | [ "table1" ] -> table1 ()
  | [ "table2" ] -> table2 ~budget ()
  | [ "table3" ] -> table3 ~full ()
  | [ "table4" ] -> table4 ~budget ()
  | [ "table5" ] -> table5 ()
  | [ "fig1" ] -> fig1 ()
  | [ "fig2" ] -> fig2 ()
  | [ "reliability" ] -> reliability ~trials ()
  | [ "encodings" ] -> encodings ~budget ()
  | [ "symmetry" ] -> symmetry ~budget ()
  | [ "crossbar" ] -> crossbar ()
  | [ "heuristic" ] -> heuristic_bench ()
  | [ "map" ] -> map_bench ~budget:(value "--budget" 0.5) ()
  | [ "xbar" ] -> xbar_bench ~budget:(value "--budget" 0.5) ()
  | [ "resyn" ] -> resyn_bench ~budget:(value "--budget" 0.5) ()
  | [ "engine" ] -> engine_bench ()
  | [ "ladder" ] ->
    ladder_bench ~budget:(value "--budget" 60.) ~limit ()
  | [ "prove" ] ->
    prove_bench ~budget:(value "--budget" 15.)
      ~limit:(int_of_float (value "--limit" 4.))
      ~workers:(int_of_float (value "--workers" 4.))
      ()
  | [ "ladder-scan" ] ->
    (* depth/hardness map of all 4-input NPN classes, incremental path only *)
    let module Npn = Mm_engine.Npn in
    let seen = Hashtbl.create 512 in
    for v = 0 to 65535 do
      let rep, _ = Npn.canon (Tt.of_int 4 v) in
      Hashtbl.replace seen (Tt.to_int rep) ()
    done;
    let reps =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
    in
    List.iter
      (fun v ->
        let spec =
          Spec.make ~name:(Printf.sprintf "npn-%04x" v) [| Tt.of_int 4 v |]
        in
        let t0 = Unix.gettimeofday () in
        let r =
          Synth.minimize ~timeout_per_call:(value "--budget" 3.) ~max_rops:4
            ~max_steps:3 spec
        in
        let wall = Unix.gettimeofday () -. t0 in
        let verdict =
          match r.Synth.best with
          | Some (_, a) ->
            Printf.sprintf "N_R=%d N_VS=%d" a.Synth.n_rops a.Synth.steps_per_leg
          | None -> "none"
        in
        Printf.printf "%04x %-14s %5.2fs attempts=%d%s\n%!" v verdict wall
          (List.length r.Synth.attempts)
          (if
             List.exists
               (fun a -> a.Synth.verdict = Synth.Timeout)
               r.Synth.attempts
           then " TIMEOUT"
           else ""))
      reps
  | [ "ladder-probe"; hex ] ->
    (* per-attempt diagnostic for one 4-input class, both paths; an all-digit
       table id must be written with an `x` prefix (e.g. x0690) or it is
       swallowed by the numeric-option filter above *)
    let hex =
      if String.length hex > 0 && hex.[0] = 'x' then
        String.sub hex 1 (String.length hex - 1)
      else hex
    in
    let v = int_of_string ("0x" ^ hex) land 0xffff in
    let spec =
      Spec.make ~name:(Printf.sprintf "npn-%04x" v) [| Tt.of_int 4 v |]
    in
    List.iter
      (fun (label, incremental) ->
        let t0 = Unix.gettimeofday () in
        let r =
          Synth.minimize ~timeout_per_call:(value "--budget" 10.) ~max_rops:4
            ~max_steps:3 ~incremental spec
        in
        Printf.printf "%s: %.3fs\n" label (Unix.gettimeofday () -. t0);
        List.iter
          (fun a ->
            let s = a.Synth.solver_stats in
            Printf.printf
              "  N_R=%d N_L=%d N_VS=%d %-7s t=%.3fs confl=%d props=%d \
               decisions=%d\n"
              a.Synth.n_rops a.Synth.n_legs a.Synth.steps_per_leg
              (match a.Synth.verdict with
               | Synth.Sat _ -> "SAT"
               | Synth.Unsat -> "UNSAT"
               | Synth.Timeout -> "timeout")
              a.Synth.time_s s.Mm_sat.Solver.conflicts
              s.Mm_sat.Solver.propagations s.Mm_sat.Solver.decisions)
          r.Synth.attempts)
      [ ("mono", false); ("inc", true) ]
  | [ "robustness" ] -> robustness_bench ()
  | [ "serve" ] -> serve_bench ()
  | [ "storm" ] -> storm_bench ()
  | [ "atlas" ] -> atlas_bench ()
  | [ "perf" ] -> perf ()
  | _ ->
    usage ();
    exit 1
